"""Perf trajectory of the step-compute reuse layer (DESIGN.md §8).

Measures, for the water benchmark at three sizes:

* MD steps/sec of `SWGromacsEngine` with reuse on (informational —
  machine-dependent, never gated);
* the wall-clock speedup of one `run_strategy_sweep` over the full
  Fig. 8+9 rung set versus running every rung naively (each through a
  fresh `NullStepCache`, i.e. one `compute_short_range` per rung) —
  machine-portable ratios, gated in CI.

Run as a script to (re)generate the committed baseline:

    PYTHONPATH=src python benchmarks/bench_step_reuse.py

Run under pytest (the CI perf-smoke job) to check the current tree
against ``BENCH_step.json``: the sweep speedup must stay >= the
acceptance floor (1.5x) and within 20 % of the committed baseline.
"""

from __future__ import annotations

import json
import time
from pathlib import Path

from repro.core.kernels import ALL_SPECS, run_kernel, run_strategy_sweep
from repro.core.stepcache import NullStepCache
from repro.md.nonbonded import NonbondedParams
from repro.md.pairlist import build_pair_list
from repro.md.water import build_water_system

BASELINE_PATH = Path(__file__).parent / "BENCH_step.json"
SIZES = (750, 1500, 3000)  # ~particles per water box
SWEEP_SPECS = list(ALL_SPECS)
#: Acceptance floor for the reuse speedup (ISSUE 3) and the CI
#: regression tolerance against the committed baseline.
MIN_SWEEP_SPEEDUP = 1.5
REGRESSION_TOLERANCE = 0.20
N_MD_STEPS = 10
#: Steady-state window: steps [2, 10) contain no nstlist rebuild
#: (nstlist=10, rebuild fires at step 0) and exclude the cold pair-list
#: and panel builds of steps 0-1.
STEADY_WINDOW = (2, N_MD_STEPS)
#: Repeats per engine measurement; the best run is reported (wall-clock
#: minima are the standard noise-robust estimator for hot-loop timing).
ENGINE_REPS = 3
#: Live CI floor for the vectorized kernel over scalar, steady-state
#: (ISSUE 8).  Deliberately below the ~4-5x typically measured so an
#: oversubscribed CI host doesn't flake the gate.
MIN_VECTORIZED_SPEEDUP = 3.0
#: Engine steps/sec of the last scalar-only committed baseline (the
#: whole-run rate recorded before the vectorized per-step path landed).
#: Kept so regenerated snapshots still document the ISSUE 8 acceptance
#: ratio against the pre-change numbers, not just against the live
#: scalar rows (which the steady-state protocol also sped up).
PRE_VECTORIZED_BASELINE = {
    750: 15.951428334603778,
    1500: 8.820428447461476,
    3000: 3.595089153801718,
}
SEED = 2019


def _nb() -> NonbondedParams:
    return NonbondedParams(r_cut=0.8, r_list=0.9, coulomb_mode="rf")


def measure_sweep_speedup(n_particles: int) -> dict:
    """Wall-clock ratio: naive per-rung kernels vs one shared sweep."""
    system = build_water_system(n_particles, seed=SEED)
    nb = _nb()
    plist = build_pair_list(system, nb.r_list)

    t0 = time.perf_counter()
    naive = {
        name: run_kernel(
            system, plist, nb, ALL_SPECS[name], cache=NullStepCache()
        )
        for name in SWEEP_SPECS
    }
    naive_s = time.perf_counter() - t0

    t0 = time.perf_counter()
    swept = run_strategy_sweep(system, plist, nb, SWEEP_SPECS)
    sweep_s = time.perf_counter() - t0

    # The point of the exercise: identical physics, fewer evaluations.
    for name in SWEEP_SPECS:
        assert swept[name].energy == naive[name].energy, name
    return {
        "n_particles": int(system.n_particles),
        "naive_seconds": naive_s,
        "sweep_seconds": sweep_s,
        "speedup": naive_s / sweep_s,
    }


class _StepStamps:
    """Progress observer recording a wall-clock stamp per completed step."""

    def __init__(self) -> None:
        self.t: dict[int, float] = {}

    def update(self, steps_done: int, steps_total: int) -> None:
        self.t[steps_done] = time.perf_counter()


def _engine_run_stamps(
    n_particles: int, kernel_impl: str
) -> tuple[float, dict[int, float]]:
    """One fresh-engine run of ``N_MD_STEPS``; per-step time stamps.

    The engine is freed (and the cycle collector run) before returning:
    a live engine pins hundreds of MB of panel buffers, which measurably
    distorts the next timed run on small-memory hosts.
    """
    import gc

    from repro.core.engine import EngineConfig, SWGromacsEngine

    system = build_water_system(n_particles, seed=SEED)
    engine = SWGromacsEngine(
        system,
        EngineConfig(nonbonded=_nb(), step_reuse=True, kernel_impl=kernel_impl),
    )
    stamps = _StepStamps()
    t0 = time.perf_counter()
    engine.run(N_MD_STEPS, progress=stamps)
    del engine, system
    gc.collect()
    return t0, stamps.t


def measure_engine_steps_per_sec(
    n_particles: int, kernel_impl: str = "scalar", reps: int = ENGINE_REPS
) -> dict:
    """Steady-state engine throughput for one kernel implementation.

    Protocol: time stamps are taken *inside* a single ``run()`` via the
    progress observer and the headline rate is computed over
    ``STEADY_WINDOW`` — steps that contain no pair-list rebuild and no
    cold panel build.  Differencing two separate runs (the old protocol)
    let cold-build variance between the runs dwarf the 8-step window;
    in-run stamps remove that term entirely.  Cold and whole-run rates
    are reported alongside as separate fields, and the best of ``reps``
    runs is kept.
    """
    lo, hi = STEADY_WINDOW
    best: dict | None = None
    for _ in range(reps):
        t0, t = _engine_run_stamps(n_particles, kernel_impl)
        row = {
            "n_particles": int(n_particles),
            "kernel_impl": kernel_impl,
            "steps_per_sec": (hi - lo) / (t[hi] - t[lo]),
            "total_steps_per_sec": N_MD_STEPS / (t[N_MD_STEPS] - t0),
            "first_step_seconds": t[1] - t0,
            "steady_window": [lo, hi],
        }
        if best is None or row["steps_per_sec"] > best["steps_per_sec"]:
            best = row
    return best


def measure_engine_impls(n_particles: int) -> dict:
    """Scalar and vectorized steady-state rows plus their ratio."""
    scalar = measure_engine_steps_per_sec(n_particles, "scalar")
    vectorized = measure_engine_steps_per_sec(n_particles, "vectorized")
    row = {
        "n_particles": int(n_particles),
        "scalar": scalar,
        "vectorized": vectorized,
        "vectorized_speedup": (
            vectorized["steps_per_sec"] / scalar["steps_per_sec"]
        ),
    }
    base = PRE_VECTORIZED_BASELINE.get(int(n_particles))
    if base:
        row["speedup_vs_pre_vectorized_baseline"] = (
            vectorized["steps_per_sec"] / base
        )
    return row


def collect() -> dict:
    from hoststamp import host_stamp

    return {
        # The sweep is serial by design: one core is the measured
        # configuration, so this baseline is never degraded.
        **host_stamp(required_cpus=1),
        "sweep_specs": SWEEP_SPECS,
        "n_md_steps": N_MD_STEPS,
        "steady_window": list(STEADY_WINDOW),
        "sweep": {str(n): measure_sweep_speedup(n) for n in SIZES},
        "engine": {str(n): measure_engine_impls(n) for n in SIZES},
    }


def main() -> None:
    data = collect()
    BASELINE_PATH.write_text(json.dumps(data, indent=2) + "\n")
    print(f"wrote {BASELINE_PATH}")
    for n, row in data["sweep"].items():
        print(
            f"  n={n}: sweep {row['speedup']:.2f}x over naive "
            f"({row['naive_seconds']:.3f}s -> {row['sweep_seconds']:.3f}s)"
        )
    for n, row in data["engine"].items():
        print(
            f"  n={n}: engine scalar {row['scalar']['steps_per_sec']:.1f} "
            f"steps/s, vectorized "
            f"{row['vectorized']['steps_per_sec']:.1f} steps/s "
            f"({row['vectorized_speedup']:.2f}x)"
        )


# ---------------------------------------------------------------------------
# pytest entry points (the CI perf-smoke job)
# ---------------------------------------------------------------------------


def test_sweep_speedup_meets_floor():
    """Reuse must buy >= 1.5x on the ablation sweep at every size."""
    for n in SIZES:
        row = measure_sweep_speedup(n)
        assert row["speedup"] >= MIN_SWEEP_SPEEDUP, row


def test_vectorized_engine_speedup():
    """Live CI gate (ISSUE 8): at every benchmark size the vectorized
    kernel must hold >= 3x the scalar kernel's steady-state engine
    throughput, measured back-to-back on this host (ratios are
    machine-portable; absolute steps/sec are not gated)."""
    import pytest

    from hoststamp import host_stamp

    stamp = host_stamp(required_cpus=1)
    if stamp["degraded"]:
        pytest.skip(
            f"degraded host (host_cpus={stamp['host_cpus']} < "
            f"required_cpus={stamp['required_cpus']})"
        )
    for n in SIZES:
        row = measure_engine_impls(n)
        assert row["vectorized_speedup"] >= MIN_VECTORIZED_SPEEDUP, (
            f"n={n}: vectorized/scalar steady-state ratio "
            f"{row['vectorized_speedup']:.2f}x < "
            f"{MIN_VECTORIZED_SPEEDUP}x floor "
            f"(scalar {row['scalar']['steps_per_sec']:.2f}, "
            f"vectorized {row['vectorized']['steps_per_sec']:.2f} steps/s)"
        )


def test_no_regression_against_committed_baseline():
    """Speedup *ratios* are machine-portable: the current tree must stay
    within 20 % of the committed ``BENCH_step.json`` baseline.  Absolute
    steps/sec are informational only and never gated."""
    from hoststamp import require_fresh_baseline

    baseline = require_fresh_baseline(
        BASELINE_PATH, "step-reuse baseline"
    )
    for n in SIZES:
        base = baseline["sweep"][str(n)]["speedup"]
        now = measure_sweep_speedup(n)["speedup"]
        floor = base * (1.0 - REGRESSION_TOLERANCE)
        assert now >= floor, (
            f"n={n}: sweep speedup regressed to {now:.2f}x "
            f"(baseline {base:.2f}x, floor {floor:.2f}x)"
        )


if __name__ == "__main__":
    main()
