"""Host-capability stamping for committed benchmark snapshots.

Committed ``BENCH_*.json`` files travel between machines; the host that
regenerates one may be weaker than the configuration the benchmark
means to measure (a 1-CPU container cannot give a 4-worker pool four
cores, or a 3-worker fleet any parallelism).  Every snapshot therefore
carries a uniform stamp:

* ``host_cpus`` — usable CPUs on the recording host;
* ``required_cpus`` — what the measured configuration actually needs;
* ``degraded`` — ``host_cpus < required_cpus``: the numbers document
  the hardware, not the implementation.

CI gates that judge the *committed* snapshot go through
:func:`require_fresh_baseline`, which turns a degraded baseline into a
loud ``pytest.skip`` with the recorded host shape in the reason —
never a silent pass against numbers that were doomed from the start.
Gates that measure *live* keep their own ``skipif`` on the current
host's CPU count; this module only guards the committed artifacts.
"""

from __future__ import annotations

import json
from pathlib import Path

from repro.parallel.pool import host_cpu_count


def host_stamp(required_cpus: int) -> dict:
    """The uniform snapshot header: host shape vs required shape."""
    if required_cpus < 1:
        raise ValueError(f"required_cpus must be >= 1: {required_cpus}")
    cpus = host_cpu_count()
    return {
        "host_cpus": cpus,
        "required_cpus": required_cpus,
        "degraded": cpus < required_cpus,
    }


def require_fresh_baseline(path: Path, what: str) -> dict:
    """Load a committed snapshot for gating, skipping loudly when it
    cannot support the comparison (missing, or recorded degraded)."""
    import pytest

    if not path.exists():
        pytest.skip(f"{what}: no committed baseline at {path.name}")
    data = json.loads(path.read_text())
    if data.get("degraded"):
        pytest.skip(
            f"{what}: committed baseline {path.name} was recorded on a "
            f"degraded host (host_cpus={data.get('host_cpus')} < "
            f"required_cpus={data.get('required_cpus')}); regenerate it "
            f"on a capable host to arm this gate"
        )
    return data
