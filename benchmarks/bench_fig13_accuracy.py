"""Fig. 13 — accuracy: mixed precision vs double-precision reference.

Two runs of the same water trajectory differing only in the short-range
kernel's arithmetic precision; total energy and temperature recorded on
the paper's cadence (every 100 steps).  The paper's 500 k-step horizon is
scaled to 2 k (20 k under REPRO_FULL_SCALE); the observable — bounded
deviation, no precision-induced drift — is horizon-stable.
"""

import numpy as np

from repro.analysis.accuracy import run_accuracy_experiment
from repro.util.tables import format_table

from conftest import FULL_SCALE, emit

N_STEPS = 20000 if FULL_SCALE else 1200
N_PARTICLES = 3000 if FULL_SCALE else 600


def test_fig13_accuracy(benchmark):
    result = benchmark.pedantic(
        lambda: run_accuracy_experiment(
            n_particles=N_PARTICLES,
            n_steps=N_STEPS,
            report_interval=max(N_STEPS // 20, 1),
        ),
        rounds=1,
        iterations=1,
    )
    e_ref = result.reference.total_energy()
    e_mix = result.mixed.total_energy()
    t_ref = result.reference.temperature()
    t_mix = result.mixed.temperature()
    steps = result.reference.steps()

    rows = [
        (int(s), float(er), float(em), float(tr), float(tm))
        for s, er, em, tr, tm in zip(steps, e_ref, e_mix, t_ref, t_mix)
    ]
    text = format_table(
        ["step", "E_ref (kJ/mol)", "E_mixed", "T_ref (K)", "T_mixed"],
        rows,
        title=f"Fig. 13 — energy/temperature traces over {N_STEPS} steps",
    )
    emit(
        benchmark,
        text,
        energy_deviation_sigma=round(result.energy_deviation(), 2),
        mean_energy_gap_rel=round(result.mean_energy_gap_relative(), 4),
        temperature_gap_K=round(result.temperature_gap(), 1),
    )

    # The paper's claim: "the deviation could be contained in a certain
    # range and our implementation is stable enough".
    assert result.energy_deviation() < 6.0
    assert result.mean_energy_gap_relative() < 0.05
    assert result.temperature_gap() < 30.0
    d_ref, d_mix = result.drifts()
    scale = max(abs(np.mean(e_ref)), 1.0)
    # Both runs share whatever residual equilibration drift exists; the
    # *precision-induced* drift (their difference) must be small.
    assert abs(d_mix - d_ref) * N_STEPS < 0.1 * scale
