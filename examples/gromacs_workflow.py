#!/usr/bin/env python
"""A GROMACS-shaped workflow end to end.

Mirrors how the paper's artifact runs: pick a ``water_GMX50_bare``-style
benchmark case, apply the Table 3 ``.mdp`` deck, minimise, run `mdrun`
(here: the simulated SW26010 engine), report pressure/temperature, and
write a ``.gro`` final structure.

Run:  python examples/gromacs_workflow.py [case]      (default "0003")
"""

import io
import sys

import numpy as np

from repro.core.engine import EngineConfig, SWGromacsEngine
from repro.md.forces import compute_short_range
from repro.md.gromacs_files import (
    PAPER_TABLE3_MDP,
    benchmark_case,
    mdp_to_configs,
    write_gro,
    write_mdp,
)
from repro.md.mdloop import MdConfig
from repro.md.minimize import minimize
from repro.md.nonbonded import NonbondedParams
from repro.md.pairlist import build_pair_list
from repro.md.pressure import compute_pressure
from repro.md.verlet_buffer import recommend_rlist


def main() -> None:
    case = sys.argv[1] if len(sys.argv) > 1 else "0003"
    print(f"water_GMX50_bare case {case}:")
    system = benchmark_case(case)
    print(f"  {system.n_particles} particles, box {system.box.lengths[0]:.2f} nm")

    print("\nTable 3 .mdp deck:")
    deck = io.StringIO()
    write_mdp(PAPER_TABLE3_MDP, deck)
    print("  " + "\n  ".join(deck.getvalue().splitlines()))

    nb, integ, algorithm = mdp_to_configs(PAPER_TABLE3_MDP)
    # Scale the cutoffs to the case's box and re-derive the buffer from
    # the run settings (GROMACS' verlet-buffer-tolerance machinery).
    r_cut = min(nb.r_cut, system.box.min_edge / 2.2)
    r_list = recommend_rlist(system, r_cut, 300.0, integ.dt, nb.nstlist)
    nb = NonbondedParams(
        r_cut=r_cut, r_list=r_list, nstlist=nb.nstlist, coulomb_mode="rf"
    )
    print(f"\nauto-tuned cutoffs: rcut={r_cut:.3f}, rlist={r_list:.3f} nm")

    print("minimising...")
    result = minimize(system, MdConfig(nonbonded=nb), n_steps=60)
    print(f"  E: {result.initial_energy:.0f} -> {result.final_energy:.0f} kJ/mol")
    system.thermalize(integ.target_temperature, np.random.default_rng(0))

    print("running 60 steps on the simulated SW26010 (SETTLE constraints)...")
    engine = SWGromacsEngine(
        system,
        EngineConfig(nonbonded=nb, integrator=integ, report_interval=15),
    )
    run = engine.run(60)
    for frame in run.reporter.frames:
        print(
            f"  step {frame.step:3d}: E = {frame.total:10.1f} kJ/mol, "
            f"T = {frame.temperature:6.1f} K"
        )

    plist = build_pair_list(system, nb.r_list)
    sr = compute_short_range(system, plist, nb)
    pressure = compute_pressure(system, sr)
    print(
        f"\npressure: {pressure.bar:8.1f} bar "
        f"(kinetic {pressure.kinetic_term * 16.6054:.1f}, "
        f"virial {pressure.virial_term * 16.6054:.1f})"
    )

    out = io.StringIO()
    write_gro(system, out, title=f"case {case} after 60 steps")
    n_lines = len(out.getvalue().splitlines())
    print(f"final structure: {n_lines} .gro lines "
          f"({out.getvalue().splitlines()[1].strip()} atoms)")
    print(f"modelled chip time: {run.timing.total() * 1e3:.1f} ms")


if __name__ == "__main__":
    main()
