#!/usr/bin/env python
"""Strong/weak scalability study (the paper's Fig. 12) plus the MPI-vs-
RDMA transport comparison that §3.6 motivates.

Run:  python examples/scaling_study.py
"""

from repro.analysis.figures import (
    PAPER_FIG12_STRONG,
    PAPER_FIG12_WEAK,
    print_efficiency_curves,
)
from repro.analysis.scaling import (
    ReferenceTimings,
    strong_scaling_curve,
    weak_scaling_curve,
)
from repro.core.comm_opt import Transport
from repro.md.nonbonded import NonbondedParams
from repro.md.water import build_water_system


def main() -> None:
    nonbonded = NonbondedParams(r_cut=1.0, r_list=1.0, coulomb_mode="rf")
    print("Measuring reference per-CG kernel times (12k particles)...")
    ref = ReferenceTimings.measure(
        lambda n: build_water_system(n, seed=2019), 12000, nonbonded
    )
    print(
        f"  pair work {ref.pair_seconds * 1e3:.2f} ms/step, "
        f"per-particle work {ref.particle_seconds * 1e3:.2f} ms/step"
    )

    strong = strong_scaling_curve(ref, 48000, nonbonded=nonbonded)
    weak = weak_scaling_curve(ref, 10000, nonbonded=nonbonded)
    print()
    print(
        print_efficiency_curves(
            strong.strong_efficiency(),
            PAPER_FIG12_STRONG,
            "Fig. 12 — strong scaling (48k particles total)",
        )
    )
    print()
    print(
        print_efficiency_curves(
            weak.weak_efficiency(),
            PAPER_FIG12_WEAK,
            "Fig. 12 — weak scaling (10k particles per CG)",
        )
    )

    # §3.6 ablation: how much of the scalability comes from RDMA?
    strong_mpi = strong_scaling_curve(
        ref, 48000, nonbonded=nonbonded, transport=Transport.MPI
    )
    eff_rdma = strong.strong_efficiency()[512]
    eff_mpi = strong_mpi.strong_efficiency()[512]
    print(
        f"\nStrong efficiency at 512 CGs: RDMA {eff_rdma:.2f} vs "
        f"stock MPI {eff_mpi:.2f} "
        f"({eff_rdma / eff_mpi:.1f}x from the §3.6 communication rewrite)"
    )


if __name__ == "__main__":
    main()
