#!/usr/bin/env python
"""Mixed-precision accuracy check (the paper's Fig. 13).

Runs the same water trajectory in float64 (reference) and float32
(the SW26010 production path) and reports the energy/temperature
deviation over the run.

Run:  python examples/accuracy_check.py [n_steps]
"""

import sys

from repro.analysis.accuracy import run_accuracy_experiment


def main() -> None:
    n_steps = int(sys.argv[1]) if len(sys.argv) > 1 else 1500
    print(f"Running two {n_steps}-step trajectories (float64 vs float32)...")
    result = run_accuracy_experiment(
        n_particles=750, n_steps=n_steps, report_interval=max(n_steps // 15, 1)
    )

    print("\nstep      E_ref      E_mixed     T_ref   T_mixed")
    for f_ref, f_mix in zip(result.reference.frames, result.mixed.frames):
        print(
            f"{f_ref.step:6d} {f_ref.total:10.1f} {f_mix.total:10.1f}"
            f" {f_ref.temperature:9.1f} {f_mix.temperature:9.1f}"
        )

    print(
        f"\nmax energy deviation: {result.energy_deviation():.2f} x the "
        "reference run's own fluctuation"
    )
    print(
        f"mean energy gap:      {result.mean_energy_gap_relative():.4%} "
        "of |<E_ref>|"
    )
    print(f"temperature gap:      {result.temperature_gap():.1f} K")
    d_ref, d_mix = result.drifts()
    print(
        f"energy drift:         reference {d_ref:+.3e}, "
        f"mixed {d_mix:+.3e} kJ/mol/step"
    )
    print(
        "\nAs in the paper's Fig. 13: the mixed-precision trajectory stays "
        "inside the thermal band of the reference — stable enough for "
        "long-running simulation."
    )


if __name__ == "__main__":
    main()
