#!/usr/bin/env python
"""The paper's headline experiment on your own workload.

Runs every optimisation rung (Fig. 8) and every competing write-conflict
strategy (Fig. 9) on one water case, verifies all of them produce the
same forces, and prints the speedup ladder with the paper's numbers
alongside.

Run:  python examples/water_strategy_ladder.py [n_particles]
"""

import sys


from repro.analysis.figures import PAPER_FIG8, PAPER_FIG9, print_speedup_bars
from repro.core.strategies import (
    BASELINE_STRATEGIES,
    STRATEGY_LADDER,
    run_ladder,
    verify_forces_agree,
)
from repro.md.forces import compute_short_range
from repro.md.nonbonded import NonbondedParams
from repro.md.pairlist import build_pair_list
from repro.md.water import build_water_system


def main() -> None:
    n_particles = int(sys.argv[1]) if len(sys.argv) > 1 else 12000
    nonbonded = NonbondedParams(r_cut=1.0, r_list=1.0, coulomb_mode="rf")
    print(f"Water case: {n_particles} particles, rlist = {nonbonded.r_list} nm")

    system = build_water_system(n_particles)
    ladder = run_ladder(
        system, STRATEGY_LADDER + BASELINE_STRATEGIES, nonbonded
    )

    print()
    print(
        print_speedup_bars(
            {s.label: ladder.speedups[s.label] for s in STRATEGY_LADDER},
            PAPER_FIG8,
            "Fig. 8 — optimisation ladder",
        )
    )
    print()
    print(
        print_speedup_bars(
            {s.label: ladder.speedups[s.label] for s in BASELINE_STRATEGIES},
            PAPER_FIG9,
            "Fig. 9 — write-conflict strategies",
        )
    )

    # Functional fidelity: every strategy computes the same physics.
    plist = build_pair_list(system, nonbonded.r_list)
    reference = compute_short_range(system, plist, nonbonded)
    errors = verify_forces_agree(ladder.results, reference.forces)
    worst = max(errors.values())
    print(
        f"\nAll {len(errors)} strategies agree with the float64 reference "
        f"(worst relative force error: {worst:.2e})"
    )

    mark = ladder.results["Mark"]
    print("\nMARK kernel cost breakdown:")
    for part, seconds in mark.breakdown.items():
        if seconds > 0:
            print(f"  {part:12s} {seconds * 1e3:8.3f} ms")


if __name__ == "__main__":
    main()
