#!/usr/bin/env python
"""Fast trajectory I/O (the paper's §3.7) on a real MD run.

Writes the same short trajectory twice — through the buffered
fast-formatter writer and through a naive per-frame writer — and compares
syscall counts, bytes, and the modelled chip-time cost at the paper's 3M
particle scale.

Run:  python examples/trajectory_io.py
"""

import io
import time

import numpy as np

from repro.core.fastio import BufferedTrajectoryWriter, io_model_seconds
from repro.md.integrator import IntegratorConfig
from repro.md.mdloop import MdConfig, MdLoop
from repro.md.nonbonded import NonbondedParams
from repro.md.water import build_water_system


def naive_write(sink: io.BytesIO, step: int, positions: np.ndarray) -> int:
    """fwrite-style: one small write per record, %-formatting."""
    syscalls = 0
    sink.write(f"frame {step} {len(positions)}\n".encode())
    syscalls += 1
    for x, y, z in positions:
        sink.write(f"{x:.3f} {y:.3f} {z:.3f}\n".encode())
        syscalls += 1
    return syscalls


def main() -> None:
    system = build_water_system(1500)
    config = MdConfig(
        nonbonded=NonbondedParams(r_cut=0.9, r_list=1.0, coulomb_mode="rf"),
        integrator=IntegratorConfig(dt=0.001, thermostat="berendsen"),
        output_interval=5,
        report_interval=100,
    )
    print("Running 25 MD steps, recording 5 trajectory frames...")
    result = MdLoop(system, config).run(25)
    frames = result.trajectory_frames

    fast_sink = io.BytesIO()
    writer = BufferedTrajectoryWriter(fast_sink, decimals=3)
    t0 = time.perf_counter()
    for k, frame in enumerate(frames):
        writer.write_frame(k * 5, frame)
    writer.flush()
    t_fast = time.perf_counter() - t0

    naive_sink = io.BytesIO()
    t0 = time.perf_counter()
    naive_calls = sum(
        naive_write(naive_sink, k * 5, frame) for k, frame in enumerate(frames)
    )
    t_naive = time.perf_counter() - t0

    print(f"\nfast writer : {writer.n_syscalls} write() calls, "
          f"{writer.bytes_written} bytes, {t_fast * 1e3:.1f} ms")
    print(f"naive writer: {naive_calls} write() calls, "
          f"{len(naive_sink.getvalue())} bytes, {t_naive * 1e3:.1f} ms")

    # Outputs agree to the configured precision.
    fast_first = fast_sink.getvalue().decode().splitlines()[1]
    naive_first = naive_sink.getvalue().decode().splitlines()[1]
    fast_vals = [float(v) for v in fast_first.split()]
    naive_vals = [float(v) for v in naive_first.split()]
    assert all(abs(a - b) <= 1.1e-3 for a, b in zip(fast_vals, naive_vals))
    print("outputs agree to 3 decimals (the paper's 'little accuracy "
          "sacrifice')")

    print("\nModelled chip cost per frame at the paper's 3M-particle scale:")
    slow = io_model_seconds(3_000_000, fast=False)
    fast = io_model_seconds(3_000_000, fast=True)
    print(f"  fwrite + stdlib %f : {slow.total * 1e3:8.1f} ms")
    print(f"  20MB buffer + fast : {fast.total * 1e3:8.1f} ms  "
          f"({slow.total / fast.total:.1f}x)")


if __name__ == "__main__":
    main()
