#!/usr/bin/env python
"""Quickstart: simulate a water box on the simulated SW26010.

Builds an SPC water system, relaxes it, runs 100 MD steps through
`SWGromacsEngine` (real dynamics + modelled chip time), and prints the
energy series plus the per-kernel time breakdown — the same taxonomy as
the paper's Table 1.

Run:  python examples/quickstart.py [n_particles]
"""

import sys

import numpy as np

from repro.core.engine import EngineConfig, SWGromacsEngine
from repro.md.integrator import IntegratorConfig
from repro.md.mdloop import MdConfig
from repro.md.minimize import minimize
from repro.md.nonbonded import NonbondedParams
from repro.md.water import build_water_system


def main() -> None:
    n_particles = int(sys.argv[1]) if len(sys.argv) > 1 else 3000
    print(f"Building an SPC water box with {n_particles} particles...")
    system = build_water_system(n_particles, temperature=300.0)
    nonbonded = NonbondedParams(r_cut=0.9, r_list=1.0, coulomb_mode="rf")

    print("Relaxing close contacts (steepest descent)...")
    result = minimize(system, MdConfig(nonbonded=nonbonded), n_steps=80)
    print(
        f"  energy {result.initial_energy:.0f} -> {result.final_energy:.0f} "
        f"kJ/mol in {result.n_steps} steps"
    )
    system.thermalize(300.0, np.random.default_rng(1))

    engine = SWGromacsEngine(
        system,
        EngineConfig(
            nonbonded=nonbonded,
            integrator=IntegratorConfig(
                dt=0.001, thermostat="vrescale", target_temperature=300.0
            ),
            optimization_level=3,  # full SW_GROMACS optimisation stack
            output_interval=0,
            report_interval=20,
        ),
    )
    print("Running 100 steps on the simulated core group...")
    run = engine.run(100)

    print("\nstep   E_total (kJ/mol)   T (K)")
    for frame in run.reporter.frames:
        print(f"{frame.step:4d}   {frame.total:14.1f}   {frame.temperature:6.1f}")

    print("\nModelled chip time per kernel (Table 1 taxonomy):")
    total = run.timing.total()
    for kernel, seconds in sorted(
        run.timing.seconds.items(), key=lambda kv: -kv[1]
    ):
        print(f"  {kernel:18s} {seconds * 1e3:9.3f} ms  ({seconds / total:5.1%})")
    print(
        f"\nModelled wall time for the run: {total * 1e3:.2f} ms "
        f"({total / run.n_steps * 1e6:.1f} us/step on one core group)"
    )
    force = run.force_result
    print(
        f"Force kernel: {force.stats['cluster_pairs']:.0f} cluster pairs, "
        f"read miss {force.stats['read_miss_ratio']:.1%}, "
        f"write miss {force.stats['write_miss_ratio']:.1%}"
    )


if __name__ == "__main__":
    main()
