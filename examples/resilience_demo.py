#!/usr/bin/env python
"""Resilience smoke test: crash, restart, inject faults — same physics.

Runs a short water box three ways and proves the resilience invariant
end to end (CI runs this as the fault-injection smoke job):

1. an uninterrupted reference run;
2. a checkpointing run "crashed" mid pair-list interval and restarted
   from the checkpoint — the final state must be **bit-identical** to 1;
3. a run under an injected-fault schedule (DMA errors, CPE deaths,
   message loss, fixed seed) — the trajectory must again be
   bit-identical, with the recovery cost visible in the modelled timing.

Exit status is non-zero on any mismatch.  Run:

    python examples/resilience_demo.py [n_particles]
"""

import sys
import tempfile
from pathlib import Path

import numpy as np

from repro.core.engine import (
    KERNEL_FAULT_RETRY,
    EngineConfig,
    SWGromacsEngine,
)
from repro.md.nonbonded import NonbondedParams
from repro.md.water import build_water_system
from repro.resilience import ResiliencePolicy, load_checkpoint

N_STEPS = 24
CRASH_AT = 17  # mid pair-list interval (nstlist = 10)
FAULTS = "seed=7,dma=1e-3,cpe=0.01,msg=1e-4,dead=3+17"


def fresh_engine(n_particles, policy=None):
    system = build_water_system(n_particles, seed=2019)
    nb = NonbondedParams(r_cut=0.8, r_list=0.9, coulomb_mode="rf")
    return SWGromacsEngine(
        system,
        EngineConfig(
            nonbonded=nb,
            resilience=policy or ResiliencePolicy(),
            report_interval=N_STEPS,
        ),
    )


def check(label, ok):
    print(f"  [{'ok' if ok else 'FAIL'}] {label}")
    return ok


def main() -> int:
    n_particles = int(sys.argv[1]) if len(sys.argv) > 1 else 750
    print(f"water box: {n_particles} particles, {N_STEPS} steps")

    print("reference run (no faults, no checkpoints)...")
    ref = fresh_engine(n_particles).run(N_STEPS)

    ok = True
    with tempfile.TemporaryDirectory() as tmp:
        path = str(Path(tmp) / "state.ckpt")
        print(f"checkpointing run, crashing at step {CRASH_AT}...")
        crashed = fresh_engine(
            n_particles,
            ResiliencePolicy(checkpoint_every=4, checkpoint_path=path),
        )
        crashed.run(CRASH_AT)
        ckpt = load_checkpoint(path)
        print(f"restarting from {path} at step {ckpt.step}...")
        resumed = fresh_engine(n_particles)
        resumed.restore(ckpt)
        restarted = resumed.run(N_STEPS)
        ok &= check(
            "restarted positions bit-identical",
            np.array_equal(
                restarted.system.positions, ref.system.positions
            ),
        )
        ok &= check(
            "restarted velocities bit-identical",
            np.array_equal(
                restarted.system.velocities, ref.system.velocities
            ),
        )

    print(f"fault-injected run ({FAULTS})...")
    faulty = fresh_engine(
        n_particles, ResiliencePolicy(faults=FAULTS)
    ).run(N_STEPS)
    ok &= check(
        "faulty-run positions bit-identical",
        np.array_equal(faulty.system.positions, ref.system.positions),
    )
    ok &= check(
        "faulty-run velocities bit-identical",
        np.array_equal(faulty.system.velocities, ref.system.velocities),
    )
    fc = faulty.fault_counts
    ok &= check(
        f"faults were actually injected ({fc.dma_errors} DMA, "
        f"{fc.cpe_losses} CPE, {fc.messages_lost} msg)",
        fc.total > 0,
    )
    retry_s = faulty.timing.seconds.get(KERNEL_FAULT_RETRY, 0.0)
    ok &= check(
        f"recovery charged to the cost model ({retry_s * 1e6:.1f} us)",
        retry_s > 0.0,
    )
    if faulty.degradation is not None and faulty.degradation.degraded:
        d = faulty.degradation
        print(
            f"  degradation: {d.mode} over {d.n_survivors}/{d.n_cpes} CPEs"
            f" (x{d.slowdown:.2f} slowdown)"
        )

    print("all checks passed" if ok else "RESILIENCE SMOKE FAILED")
    return 0 if ok else 1


if __name__ == "__main__":
    sys.exit(main())
