"""Utility layer: table formatting and unit constants."""

import pytest

from repro.util.tables import format_ratio, format_series, format_table
from repro.util.units import (
    COULOMB_CONSTANT,
    KB_KJ_PER_MOL_K,
    kinetic_temperature,
)


class TestTables:
    def test_basic_table(self):
        out = format_table(
            ["a", "b"], [(1, 2.5), ("xy", 3.14159)], title="demo"
        )
        lines = out.splitlines()
        assert lines[0] == "demo"
        assert "3.142" in out  # 4 significant digits
        assert "xy" in out

    def test_column_count_enforced(self):
        with pytest.raises(ValueError):
            format_table(["a", "b"], [(1,)])

    def test_alignment_consistent(self):
        out = format_table(["col"], [(1,), (1000000,)])
        rows = out.splitlines()[2:]
        assert len(rows[0]) == len(rows[1])

    def test_series(self):
        out = format_series("s", [1, 2], [0.5, 0.25], "x", "y")
        assert "series s" in out
        assert "1: 0.5" in out

    def test_series_length_mismatch(self):
        with pytest.raises(ValueError):
            format_series("s", [1], [1.0, 2.0])

    def test_ratio(self):
        assert "2.00x" in format_ratio(2.0, 1.0)
        assert "paper=0" in format_ratio(1.0, 0.0)


class TestUnits:
    def test_boltzmann_value(self):
        assert KB_KJ_PER_MOL_K == pytest.approx(0.008314462618)

    def test_coulomb_constant_value(self):
        # Two unit charges 1 nm apart: 138.935 kJ/mol.
        assert COULOMB_CONSTANT == pytest.approx(138.935458)

    def test_kinetic_temperature(self):
        # 1 DOF at Ekin = kB*T/2 gives exactly T.
        t = 250.0
        assert kinetic_temperature(0.5 * KB_KJ_PER_MOL_K * t, 1) == pytest.approx(t)

    def test_kinetic_temperature_rejects_bad_dof(self):
        with pytest.raises(ValueError):
            kinetic_temperature(1.0, 0)
