"""Admission control and ordering semantics of the bounded job queue.

Every rejection must carry a wire-stable reason code; ordering within a
tenant must be priority-then-FIFO and fully deterministic.
"""

from __future__ import annotations

import pytest

from repro.serve.jobs import JobRequest
from repro.serve.queue import (
    REASON_DRAINING,
    REASON_INVALID,
    REASON_QUEUE_FULL,
    REASON_TENANT_QUOTA,
    AdmissionDecision,
    Job,
    JobQueue,
)

FAST = dict(n_particles=300, r_cut=0.45)


def make_job(queue: JobQueue, **kw) -> Job:
    req = JobRequest(**{**FAST, **kw})
    return Job(request=req, job_id=queue.next_seq() + 1, seq=queue.next_seq())


class TestAdmission:
    def test_valid_request_admitted(self):
        q = JobQueue(max_depth=2)
        assert q.admit(JobRequest(**FAST)) == AdmissionDecision.ok()

    def test_invalid_request_rejected_with_reason(self):
        q = JobQueue(max_depth=2)
        decision = q.admit(JobRequest(**FAST, spec="NOPE"))
        assert not decision.accepted
        assert decision.error.code == REASON_INVALID
        assert "NOPE" in decision.error.message

    def test_full_queue_rejected_with_reason(self):
        q = JobQueue(max_depth=2)
        q.push(make_job(q, seed=1))
        q.push(make_job(q, seed=2))
        decision = q.admit(JobRequest(**FAST, seed=3))
        assert not decision.accepted
        assert decision.error.code == REASON_QUEUE_FULL
        assert "2/2" in decision.error.message

    def test_tenant_quota_rejected_with_reason(self):
        q = JobQueue(max_depth=8, max_per_tenant=1)
        q.push(make_job(q, tenant="a"))
        decision = q.admit(JobRequest(**FAST, tenant="a", seed=2))
        assert not decision.accepted
        assert decision.error.code == REASON_TENANT_QUOTA
        # Another tenant still fits.
        assert q.admit(JobRequest(**FAST, tenant="b")).accepted

    def test_draining_rejected_with_reason(self):
        q = JobQueue(max_depth=8)
        q.draining = True
        decision = q.admit(JobRequest(**FAST))
        assert not decision.accepted
        assert decision.error.code == REASON_DRAINING

    def test_invalid_beats_capacity(self):
        # A bad request is named as bad even when the queue is also full.
        q = JobQueue(max_depth=1)
        q.push(make_job(q))
        decision = q.admit(JobRequest(**FAST, spec="NOPE"))
        assert decision.error.code == REASON_INVALID

    def test_constructor_bounds_validated(self):
        with pytest.raises(ValueError):
            JobQueue(max_depth=0)
        with pytest.raises(ValueError):
            JobQueue(max_depth=4, max_per_tenant=0)


class TestOrdering:
    def test_priority_then_fifo(self):
        q = JobQueue(max_depth=8)
        low1 = make_job(q, seed=1, priority=0)
        high = make_job(q, seed=2, priority=5)
        low2 = make_job(q, seed=3, priority=0)
        for job in (low1, high, low2):
            q.push(job)
        order = [q.pop("default") for _ in range(3)]
        assert order == [high, low1, low2]

    def test_pop_empties_tenant_bucket(self):
        q = JobQueue(max_depth=8)
        q.push(make_job(q, tenant="a"))
        assert q.tenants() == ["a"]
        q.pop("a")
        assert q.tenants() == []
        assert len(q) == 0

    def test_tenants_sorted(self):
        q = JobQueue(max_depth=8)
        for tenant in ("zeta", "alpha", "mid"):
            q.push(make_job(q, tenant=tenant))
        assert q.tenants() == ["alpha", "mid", "zeta"]

    def test_pop_matching_respects_priority_order(self):
        q = JobQueue(max_depth=8)
        low = make_job(q, seed=1, priority=0)
        high = make_job(q, seed=2, priority=3)
        q.push(low)
        q.push(high)
        got = q.pop_matching(lambda job: True)
        assert got is high
        assert len(q) == 1

    def test_pop_matching_filters(self):
        q = JobQueue(max_depth=8)
        kernel = make_job(q, seed=1)
        md = make_job(q, seed=2, kind="md")
        q.push(kernel)
        q.push(md)
        got = q.pop_matching(lambda job: job.request.kind == "md")
        assert got is md
        assert q.pop_matching(lambda job: job.request.kind == "md") is None
        assert len(q) == 1

    def test_stats_track_accepts_and_rejects(self):
        q = JobQueue(max_depth=1)
        q.push(make_job(q))
        assert q.stats.accepted == 1
        q.admit(JobRequest(**FAST, seed=9))
        q.admit(JobRequest(**FAST, spec="NOPE"))
        assert q.stats.rejected == 2
        assert q.stats.rejected_by_reason == {
            REASON_QUEUE_FULL: 1,
            REASON_INVALID: 1,
        }


class TestTenantQueues:
    """The per-tenant backlog snapshot feeding the stats/metrics ops."""

    def test_empty_queue_is_empty_dict(self):
        q = JobQueue(max_depth=8)
        assert q.tenant_queues(now=100.0) == {}

    def test_depth_and_oldest_age_per_tenant(self):
        q = JobQueue(max_depth=8)
        a1 = make_job(q, tenant="a", seed=1)
        a1.submitted_at = 10.0
        a2 = make_job(q, tenant="a", seed=2)
        a2.submitted_at = 14.0
        b1 = make_job(q, tenant="b", seed=3)
        b1.submitted_at = 12.0
        for job in (a1, a2, b1):
            q.push(job)
        snap = q.tenant_queues(now=20.0)
        assert snap == {
            "a": {"depth": 2, "oldest_age_seconds": 10.0},
            "b": {"depth": 1, "oldest_age_seconds": 8.0},
        }

    def test_age_clamped_non_negative(self):
        q = JobQueue(max_depth=8)
        job = make_job(q)
        job.submitted_at = 50.0
        q.push(job)
        snap = q.tenant_queues(now=49.0)  # clock skew must not go negative
        assert snap["default"]["oldest_age_seconds"] == 0.0

    def test_popped_tenant_leaves_snapshot(self):
        q = JobQueue(max_depth=8)
        q.push(make_job(q, tenant="a"))
        q.push(make_job(q, tenant="b", seed=2))
        q.pop("a")
        assert set(q.tenant_queues(now=1.0)) == {"b"}
