"""Job model: fingerprints, validation, wire round trips, and the
executor paths the service's bit-identity guarantee is pinned against.

The load-bearing invariants:

* the fingerprint covers exactly the execution-relevant fields —
  scheduling metadata (tenant/priority/timeout) must NOT shift it, or
  dedup would stop coalescing identical work across tenants;
* `execute_batch` is bit-identical to per-request `execute_request`
  while sharing one StepCache across compatible units.
"""

from __future__ import annotations

import pytest

from repro.serve.jobs import (
    BatchOutcome,
    InvalidRequestError,
    JobError,
    JobRequest,
    JobResult,
    execute_batch,
    execute_request,
)

#: Small-but-valid water system: 300 particles supports r_list 0.55.
FAST = dict(n_particles=300, r_cut=0.45)


class TestFingerprint:
    def test_identical_requests_share_fingerprint(self):
        assert JobRequest(**FAST).fingerprint == JobRequest(**FAST).fingerprint

    def test_scheduling_fields_do_not_affect_fingerprint(self):
        base = JobRequest(**FAST)
        for variant in (
            JobRequest(**FAST, tenant="other"),
            JobRequest(**FAST, priority=7),
            JobRequest(**FAST, timeout_s=1.5),
        ):
            assert variant.fingerprint == base.fingerprint

    @pytest.mark.parametrize(
        "change",
        [
            {"spec": "VEC"},
            {"seed": 7},
            {"n_particles": 303},
            {"r_cut": 0.5},
            {"kind": "md"},
        ],
    )
    def test_execution_fields_change_fingerprint(self, change):
        assert (
            JobRequest(**{**FAST, **change}).fingerprint
            != JobRequest(**FAST).fingerprint
        )

    def test_md_only_fields_ignored_for_kernel(self):
        # steps/level only matter for md requests.
        assert (
            JobRequest(**FAST, steps=50).fingerprint
            == JobRequest(**FAST).fingerprint
        )
        assert (
            JobRequest(**FAST, kind="md", steps=50).fingerprint
            != JobRequest(**FAST, kind="md").fingerprint
        )

    def test_system_key_ignores_spec(self):
        a = JobRequest(**FAST, spec="MARK")
        b = JobRequest(**FAST, spec="VEC")
        assert a.system_key == b.system_key
        assert a.fingerprint != b.fingerprint


class TestValidation:
    @pytest.mark.parametrize(
        "bad",
        [
            {"kind": "quantum"},
            {"spec": "NOPE"},
            {"n_particles": 2},
            {"kind": "md", "steps": 0},
            {"kind": "md", "level": 9},
            {"r_cut": 0.0},
            {"timeout_s": -1.0},
        ],
    )
    def test_invalid_requests_raise(self, bad):
        with pytest.raises(InvalidRequestError):
            JobRequest(**{**FAST, **bad}).validate()

    def test_valid_request_passes(self):
        JobRequest(**FAST).validate()
        JobRequest(**FAST, kind="md", steps=3).validate()

    def test_from_dict_rejects_unknown_fields(self):
        with pytest.raises(InvalidRequestError, match="unknown request field"):
            JobRequest.from_dict({"n_particles": 300, "gpu": True})


class TestWireRoundTrip:
    def test_request_round_trip(self):
        req = JobRequest(**FAST, tenant="t1", priority=2, timeout_s=3.0)
        assert JobRequest.from_dict(req.to_dict()) == req

    def test_result_round_trip(self):
        res = JobResult(
            job_id=3,
            fingerprint="ab" * 16,
            kind="kernel",
            ok=False,
            error=JobError("timeout", "too slow"),
            executed=False,
            attempts=2,
            queue_seconds=0.5,
            execute_seconds=1.5,
        )
        back = JobResult.from_dict(res.to_dict())
        assert back == res

    def test_result_dict_is_json_safe(self):
        import json

        res = JobResult(job_id=1, fingerprint="00", kind="md", ok=True,
                        payload={"energy": -1.0})
        assert json.loads(json.dumps(res.to_dict())) == res.to_dict()


class TestExecutors:
    def test_kernel_payload_shape(self):
        payload = execute_request(JobRequest(**FAST))
        assert set(payload) == {
            "energy", "forces_fp", "modelled_seconds", "breakdown"
        }
        assert isinstance(payload["energy"], float)

    def test_kernel_execution_is_deterministic(self):
        req = JobRequest(**FAST)
        assert execute_request(req) == execute_request(req)

    def test_md_execution_is_deterministic(self):
        req = JobRequest(**FAST, kind="md", steps=2)
        a = execute_request(req)
        assert a == execute_request(req)
        assert a["n_steps"] == 2
        assert "positions_fp" in a

    def test_batch_matches_direct_execution(self):
        reqs = tuple(
            JobRequest(**FAST, spec=s) for s in ("MARK", "CACHE", "VEC")
        )
        outcome = execute_batch(reqs)
        assert isinstance(outcome, BatchOutcome)
        for req, payload in zip(reqs, outcome.payloads):
            assert payload == execute_request(req)

    def test_batch_shares_one_stepcache(self):
        # Three specs off one system key: one short-range evaluation,
        # two cache hits (the §8 sweep-style reuse, across requests).
        reqs = tuple(
            JobRequest(**FAST, spec=s) for s in ("MARK", "CACHE", "VEC")
        )
        outcome = execute_batch(reqs)
        assert outcome.cache_stats["sr_evals"] == 1
        assert outcome.cache_stats["sr_hits"] == 2

    def test_batch_mixed_system_keys_stay_isolated(self):
        reqs = (
            JobRequest(**FAST, spec="MARK"),
            JobRequest(n_particles=300, r_cut=0.45, seed=7, spec="MARK"),
        )
        outcome = execute_batch(reqs)
        for req, payload in zip(reqs, outcome.payloads):
            assert payload == execute_request(req)
        assert outcome.payloads[0] != outcome.payloads[1]

    def test_batch_handles_md_alongside_kernels(self):
        reqs = (
            JobRequest(**FAST, spec="MARK"),
            JobRequest(**FAST, kind="md", steps=2),
        )
        outcome = execute_batch(reqs)
        assert outcome.payloads[0] == execute_request(reqs[0])
        assert outcome.payloads[1] == execute_request(reqs[1])
