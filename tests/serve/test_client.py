"""Client-side transport semantics: connect retries and stats shape.

The initial-connect retry loop exists for exactly one scenario — a
client racing a service (or fleet) that is still binding its socket —
so the tests stage that race for real: a listener that appears late,
and one that never appears.
"""

from __future__ import annotations

import asyncio
import json
import socket
import threading
import time

import pytest

from repro.serve.client import (
    ServeClient,
    ServeConnectionError,
    ServeRequestError,
)
from repro.serve.jobs import JobRequest
from repro.serve.service import ServeConfig, SimulationService

FAST = dict(n_particles=300, r_cut=0.45)


def late_ping_server(path: str, delay_s: float) -> threading.Thread:
    """Bind ``path`` after ``delay_s`` and answer one ping request."""

    def serve() -> None:
        time.sleep(delay_s)
        with socket.socket(socket.AF_UNIX, socket.SOCK_STREAM) as listener:
            listener.bind(path)
            listener.listen(1)
            listener.settimeout(30.0)
            conn, _ = listener.accept()
            with conn:
                conn.recv(65536)
                conn.sendall(
                    json.dumps({"ok": True, "op": "ping"}).encode() + b"\n"
                )

    thread = threading.Thread(target=serve, daemon=True)
    thread.start()
    return thread


class TestConnectRetries:
    def test_retry_wins_the_startup_race(self, tmp_path):
        path = str(tmp_path / "late.sock")
        thread = late_ping_server(path, delay_s=0.3)
        client = ServeClient(
            socket_path=path, connect_retries=50, connect_backoff=0.02
        )
        assert client.ping()
        thread.join(timeout=10)

    def test_exhausted_retries_raise_structured_code(self, tmp_path):
        client = ServeClient(
            socket_path=str(tmp_path / "never.sock"),
            connect_retries=2,
            connect_backoff=0.01,
        )
        with pytest.raises(ServeRequestError) as err:
            client.ping()
        assert err.value.code == "connect_failed"
        assert "3 connect attempt(s)" in err.value.message

    def test_zero_retries_keeps_fail_fast_transport_error(self, tmp_path):
        client = ServeClient(socket_path=str(tmp_path / "never.sock"))
        with pytest.raises(ServeConnectionError):
            client.ping()

    def test_retry_args_validated(self):
        with pytest.raises(ValueError):
            ServeClient(socket_path="x", connect_retries=-1)
        with pytest.raises(ValueError):
            ServeClient(socket_path="x", connect_backoff=-0.1)


class TestTenantQueueStats:
    def test_stats_op_reports_depth_and_oldest_age(self):
        async def scenario():
            async with SimulationService(ServeConfig(max_depth=16)) as svc:
                await svc.pause()
                jobs = []
                for tenant, count in (("alice", 2), ("bob", 1)):
                    for seed in range(count):
                        jobs.append(
                            await svc.submit(
                                JobRequest(**FAST, tenant=tenant, seed=seed)
                            )
                        )
                await asyncio.sleep(0.05)  # let the backlog age measurably
                queued = await svc._dispatch_op({"op": "stats"})
                await svc.resume()
                await asyncio.gather(*(j.future for j in jobs))
                idle = await svc._dispatch_op({"op": "stats"})
                return queued, idle

        queued, idle = asyncio.run(scenario())
        tq = queued["tenant_queues"]
        assert set(tq) == {"alice", "bob"}
        assert tq["alice"]["depth"] == 2
        assert tq["bob"]["depth"] == 1
        assert tq["alice"]["oldest_age_seconds"] >= 0.05
        assert tq["bob"]["oldest_age_seconds"] >= 0.05
        # Once the backlog drains the snapshot empties with it.
        assert idle["tenant_queues"] == {}
