"""Durable-service semantics: crash replay, store hits, drain sealing,
and the metrics/progress wire ops (DESIGN.md §12).

The crash tests don't kill a process (CI does that in durable-smoke);
they stage the on-disk state a ``kill -9`` leaves behind — acceptance
records with no terminal record — by writing the journal directly,
then verify a fresh service replays it bit-identically.
"""

from __future__ import annotations

import asyncio

import pytest

from repro.durable.journal import JobJournal
from repro.serve.client import ServeClient
from repro.serve.jobs import JobRequest, execute_request
from repro.serve.service import ServeConfig, SimulationService

FAST = dict(n_particles=300, r_cut=0.45)


def req(**kw) -> JobRequest:
    merged = {**FAST, **kw}
    return JobRequest(**merged)


def durable_config(tmp_path, **kw) -> ServeConfig:
    return ServeConfig(max_depth=16, journal_dir=str(tmp_path / "dur"), **kw)


class TestCrashReplay:
    def test_abandoned_jobs_replay_bit_identically(self, tmp_path):
        """Acceptance records without terminal records — the kill -9
        residue — must re-execute on restart and match direct runs."""
        requests = [req(spec="MARK"), req(spec="CACHE", seed=7)]
        journal = JobJournal(tmp_path / "dur" / "journal")
        for jid, r in enumerate(requests, start=10):
            journal.accepted(jid, r.fingerprint, r.tenant, r.to_dict())
        journal.close()

        async def main():
            async with SimulationService(durable_config(tmp_path)) as svc:
                assert svc.stats.journal_replays == len(requests)
                # Replayed jobs keep their pre-crash ids.
                results = {}
                for jid in (10, 11):
                    response = await svc._dispatch_op(
                        {"op": "wait", "job_id": jid}
                    )
                    assert response["ok"]
                    results[jid] = response["result"]
                return results

        results = asyncio.run(main())
        for jid, r in zip((10, 11), requests):
            assert results[jid]["ok"]
            assert results[jid]["payload"] == execute_request(r)

    def test_replay_resolves_journal(self, tmp_path):
        r = req()
        journal = JobJournal(tmp_path / "dur" / "journal")
        journal.accepted(5, r.fingerprint, r.tenant, r.to_dict())
        journal.close()

        async def main():
            async with SimulationService(durable_config(tmp_path)) as svc:
                while 5 not in svc._results:
                    await asyncio.sleep(0.01)

        asyncio.run(main())
        # After drain, a fresh recovery finds nothing to replay.
        recovery = JobJournal(tmp_path / "dur" / "journal").recover()
        assert recovery.pending == []
        assert recovery.completed >= 1

    def test_new_job_ids_allocate_above_journal(self, tmp_path):
        r = req()
        journal = JobJournal(tmp_path / "dur" / "journal")
        journal.accepted(40, r.fingerprint, r.tenant, r.to_dict())
        journal.completed(40, r.fingerprint)
        journal.close()

        async def main():
            async with SimulationService(durable_config(tmp_path)) as svc:
                job = await svc.submit(req(seed=99))
                assert job.job_id > 40
                await job.future

        asyncio.run(main())

    def test_unreplayable_record_fails_structurally(self, tmp_path):
        journal = JobJournal(tmp_path / "dur" / "journal")
        journal.accepted(3, "fp3", "default", {"kind": "nope", "bogus": 1})
        journal.close()

        async def main():
            async with SimulationService(durable_config(tmp_path)) as svc:
                # The bad record neither crashes startup nor lingers.
                assert svc.stats.journal_replays == 0
                assert 3 not in svc._jobs

        asyncio.run(main())
        recovery = JobJournal(tmp_path / "dur" / "journal").recover()
        assert recovery.pending == []
        assert recovery.failed == 1


class TestResultStoreHits:
    def test_duplicate_across_restart_answers_from_store(self, tmp_path):
        request = req(kind="md", steps=3)

        async def run_once():
            async with SimulationService(durable_config(tmp_path)) as svc:
                return await svc.submit_and_wait(request)

        first = asyncio.run(run_once())
        assert first.ok and first.executed and first.result_code is None
        second = asyncio.run(run_once())
        assert second.ok and not second.executed
        assert second.result_code == "duplicate_completed"
        assert second.payload == first.payload  # bit-identical from disk

    def test_client_sees_duplicate_completed(self, tmp_path):
        """Satellite (b): the structured code crosses the wire."""
        request = req(spec="VEC")
        sock = str(tmp_path / "serve.sock")

        async def serve_once():
            svc = SimulationService(durable_config(tmp_path))
            await svc.start()
            await svc.serve_unix(sock)
            done = asyncio.Event()

            def call():
                client = ServeClient(socket_path=sock, connect_retries=40)
                result = client.submit(request)
                client.drain()
                return result

            result = await asyncio.to_thread(call)
            await svc.run_until_drained()
            return result

        first = asyncio.run(serve_once())
        assert first.result_code is None
        second = asyncio.run(serve_once())
        assert second.result_code == "duplicate_completed"
        assert not second.executed
        assert second.payload == first.payload

    def test_store_hit_skips_queue_capacity(self, tmp_path):
        request = req(spec="PKG")

        async def main():
            config = durable_config(tmp_path)
            async with SimulationService(config) as svc:
                await svc.submit_and_wait(request)
            # A 1-deep queue that is kept full: the duplicate must still
            # answer (capacity checks never see a store hit).
            config2 = ServeConfig(
                max_depth=1, journal_dir=str(tmp_path / "dur")
            )
            async with SimulationService(config2) as svc:
                await svc.pause()
                blocker = await svc.submit(req(seed=1234))
                result = await svc.submit_and_wait(request)
                assert result.result_code == "duplicate_completed"
                await svc.resume()
                await blocker.future

        asyncio.run(main())


class TestDrainSealsDurableState:
    def test_drain_flushes_journal_and_store(self, tmp_path):
        """Satellite (a): a clean drain leaves zero pending records and
        a synced store."""

        async def main():
            async with SimulationService(durable_config(tmp_path)) as svc:
                await svc.submit_and_wait(req())
                stats = await svc._dispatch_op({"op": "stats"})
                assert stats["stats"]["journal_replays"] == 0
                assert stats["durable"]["store"]["entries"] == 1
                assert stats["durable"]["journal_records"] == 2

        asyncio.run(main())
        recovery = JobJournal(tmp_path / "dur" / "journal").recover()
        assert recovery.pending == []

    def test_stats_surface_replay_count(self, tmp_path):
        r = req(seed=31)
        journal = JobJournal(tmp_path / "dur" / "journal")
        journal.accepted(2, r.fingerprint, r.tenant, r.to_dict())
        journal.close()

        async def main():
            async with SimulationService(durable_config(tmp_path)) as svc:
                while 2 not in svc._results:
                    await asyncio.sleep(0.01)
                stats = await svc._dispatch_op({"op": "stats"})
                assert stats["stats"]["journal_replays"] == 1
                assert stats["durable"]["journal_replays"] == 1

        asyncio.run(main())

    def test_non_durable_stats_still_carry_counters(self, tmp_path):
        async def main():
            async with SimulationService(ServeConfig(max_depth=4)) as svc:
                await svc.submit_and_wait(req())
                stats = await svc._dispatch_op({"op": "stats"})
                assert stats["stats"]["journal_replays"] == 0
                assert stats["stats"]["store_hits"] == 0
                assert "durable" not in stats

        asyncio.run(main())


class TestMetricsOp:
    def test_metrics_rows_per_tenant(self, tmp_path):
        async def main():
            async with SimulationService(durable_config(tmp_path)) as svc:
                await svc.submit_and_wait(req(tenant="alice"))
                await svc.submit_and_wait(req(tenant="bob", seed=5))
                response = await svc._dispatch_op({"op": "metrics"})
                return response["metrics"]

        metrics = asyncio.run(main())
        assert set(metrics) == {"alice", "bob"}
        for row in metrics.values():
            assert row["submitted"] == 1
            assert row["completed"] == 1
            assert row["samples"] == 1
            assert row["p99_latency_s"] >= row["p50_queue_s"] >= 0.0
            assert row["queue_depth"] == 0

    def test_metrics_count_rejections(self, tmp_path):
        async def main():
            config = ServeConfig(max_depth=1)
            async with SimulationService(config) as svc:
                await svc.pause()
                blocker = await svc.submit(req(seed=1))
                from repro.serve.service import AdmissionRejected

                with pytest.raises(AdmissionRejected):
                    await svc.submit(req(seed=2))
                response = await svc._dispatch_op({"op": "metrics"})
                await svc.resume()
                await blocker.future
                return response["metrics"]

        metrics = asyncio.run(main())
        row = metrics["default"]
        assert row["rejected"] == 1
        assert row["rejected_by_reason"] == {"queue_full": 1}
        assert 0.0 < row["rejection_rate"] < 1.0

    def test_client_metrics_roundtrip(self, tmp_path):
        sock = str(tmp_path / "serve.sock")

        async def main():
            svc = SimulationService(ServeConfig(max_depth=4))
            await svc.start()
            await svc.serve_unix(sock)

            def call():
                client = ServeClient(socket_path=sock, connect_retries=40)
                client.submit(req())
                metrics = client.metrics()
                client.drain()
                return metrics

            metrics = await asyncio.to_thread(call)
            await svc.run_until_drained()
            return metrics

        metrics = asyncio.run(main())
        assert metrics["default"]["completed"] == 1


class TestProgressOp:
    def test_stream_ends_with_result(self, tmp_path):
        sock = str(tmp_path / "serve.sock")
        request = req(kind="md", steps=6)

        async def main():
            svc = SimulationService(ServeConfig(max_depth=4))
            await svc.start()
            await svc.serve_unix(sock)

            def call():
                client = ServeClient(socket_path=sock, connect_retries=40)
                job_id = client.submit(request, wait=False)
                updates = list(client.progress(job_id, interval_s=0.02))
                client.drain()
                return updates

            updates = await asyncio.to_thread(call)
            await svc.run_until_drained()
            return updates

        updates = asyncio.run(main())
        assert updates, "stream yielded nothing"
        *partial, final = updates
        assert final["done"] and final["result"].ok
        assert final["result"].kind == "md"
        for update in partial:
            assert not update["done"]
            assert update["progress"]["state"] in ("queued", "executing")

    def test_md_progress_reports_step_counts(self, tmp_path):
        """The engine's step loop publishes through the progress file;
        at least one streamed snapshot must carry partial step counts
        when the stream outlives the first publish."""
        sock = str(tmp_path / "serve.sock")
        request = req(kind="md", steps=40, n_particles=600)

        async def main():
            svc = SimulationService(ServeConfig(max_depth=4))
            await svc.start()
            await svc.serve_unix(sock)

            def call():
                client = ServeClient(socket_path=sock, connect_retries=40)
                job_id = client.submit(request, wait=False)
                steps_seen = [
                    u["progress"].get("steps_done")
                    for u in client.progress(job_id, interval_s=0.01)
                    if not u["done"]
                ]
                client.drain()
                return steps_seen

            steps_seen = await asyncio.to_thread(call)
            await svc.run_until_drained()
            return steps_seen

        steps_seen = asyncio.run(main())
        published = [s for s in steps_seen if s is not None]
        assert published, f"no step counts in {len(steps_seen)} snapshots"
        assert published == sorted(published)  # monotone
        assert all(1 <= s <= 40 for s in published)

    def test_unknown_job_is_structured(self, tmp_path):
        sock = str(tmp_path / "serve.sock")

        async def main():
            svc = SimulationService(ServeConfig(max_depth=4))
            await svc.start()
            await svc.serve_unix(sock)

            def call():
                from repro.serve.client import ServeRequestError

                client = ServeClient(socket_path=sock, connect_retries=40)
                try:
                    with pytest.raises(ServeRequestError) as err:
                        list(client.progress(424242))
                    return err.value.code
                finally:
                    client.drain()

            code = await asyncio.to_thread(call)
            await svc.run_until_drained()
            return code

        assert asyncio.run(main()) == "unknown_job"
