"""Scenario specs through the serve tier: canonicalization/dedup,
bit-identity with the legacy water path, admission rejection, batching,
residency, and fleet routing."""

import numpy as np
import pytest

from repro.serve.batcher import Batch
from repro.serve.jobs import (
    InvalidRequestError,
    JobRequest,
    execute_batch,
    execute_kernel_request,
    execute_md_request,
)


class TestCanonicalization:
    def test_spellings_share_fingerprint(self):
        # The satellite regression: textually different spec strings
        # that concretize identically MUST share a fingerprint.
        a = JobRequest(kind="kernel",
                       scenario="water@spce n=1500 ensemble=nvt elec=rf")
        b = JobRequest(kind="kernel",
                       scenario="water@spce elec=rf ensemble=nvt n=1500")
        c = JobRequest(kind="kernel",
                       scenario="water@spce n=1500 ensemble=nvt elec=rf "
                                "rung=fused seed=2019")
        assert a.fingerprint == b.fingerprint == c.fingerprint

    def test_distinct_specs_distinct_fingerprints(self):
        a = JobRequest(kind="kernel", scenario="water n=900")
        b = JobRequest(kind="kernel", scenario="water n=1500")
        assert a.fingerprint != b.fingerprint

    def test_scheduling_fields_stay_out(self):
        a = JobRequest(kind="kernel", scenario="water n=900",
                       tenant="a", priority=5)
        b = JobRequest(kind="kernel", scenario="water n=900",
                       tenant="b", timeout_s=9.0)
        assert a.fingerprint == b.fingerprint

    def test_legacy_fields_ignored_when_scenario_set(self):
        # n_particles/spec/level/r_cut/seed are dead fields for
        # spec-bearing requests: they must not leak into identity.
        a = JobRequest(kind="kernel", scenario="water n=900",
                       n_particles=17, spec="ORI", r_cut=0.3, seed=7)
        b = JobRequest(kind="kernel", scenario="water n=900")
        assert a.fingerprint == b.fingerprint
        assert a.system_key == b.system_key

    def test_batcher_dedups_spellings(self):
        # Same regression one layer up: the batcher's dedup path keys
        # on the fingerprint, so two spellings coalesce into one unit
        # (the second job rides the first's execution).
        from repro.serve.queue import Job

        batch = Batch()
        a = JobRequest(kind="kernel", scenario="water n=900 elec=rf")
        b = JobRequest(kind="kernel",
                       scenario="water@spc seed=2019 n=900")
        assert batch.add(Job(request=a, job_id=1, seq=1)) is True
        assert batch.add(Job(request=b, job_id=2, seq=2)) is False
        assert batch.n_units == 1
        assert batch.dedup_hits == 1

    def test_md_steps_in_fingerprint(self):
        a = JobRequest(kind="md", scenario="water n=900", steps=3)
        b = JobRequest(kind="md", scenario="water n=900", steps=5)
        assert a.fingerprint != b.fingerprint

    def test_system_key_ignores_strategy(self):
        a = JobRequest(kind="kernel", scenario="water rung=cache")
        b = JobRequest(kind="kernel", scenario="water rung=vec")
        assert a.system_key == b.system_key
        assert a.fingerprint != b.fingerprint

    def test_system_key_tracks_electrostatics(self):
        # One NonbondedParams per batch group: elec MUST split groups.
        a = JobRequest(kind="kernel", scenario="water elec=rf")
        b = JobRequest(kind="kernel", scenario="water elec=cut")
        assert a.system_key != b.system_key

    def test_wire_round_trip(self):
        req = JobRequest(kind="kernel", scenario="water n=900")
        again = JobRequest.from_dict(req.to_dict())
        assert again == req
        assert again.fingerprint == req.fingerprint


class TestAdmission:
    def test_invalid_spec_rejected_with_rule_name(self):
        req = JobRequest(kind="kernel", scenario="ljmix elec=pme")
        with pytest.raises(InvalidRequestError) as err:
            req.validate()
        assert "depends_on" in str(err.value)
        assert "charged" in str(err.value)

    def test_conflict_rejected_with_rule_name(self):
        req = JobRequest(kind="md", scenario="ionic constraints=settle")
        with pytest.raises(InvalidRequestError) as err:
            req.validate()
        assert "conflicts" in str(err.value)

    def test_parse_error_rejected(self):
        with pytest.raises(InvalidRequestError, match="unknown variant"):
            JobRequest(kind="kernel", scenario="water nparts=5").validate()

    def test_valid_spec_admitted(self):
        JobRequest(kind="kernel",
                   scenario="water@spce n=1500 ensemble=nvt elec=rf"
                   ).validate()

    def test_legacy_validation_unchanged(self):
        with pytest.raises(InvalidRequestError, match="kernel spec"):
            JobRequest(kind="kernel", spec="NOPE").validate()


class TestBitIdentity:
    def test_kernel_water_spec_matches_legacy(self):
        # Acceptance: existing water workloads expressed as specs stay
        # bit-identical to the legacy field form.
        legacy = JobRequest(kind="kernel", n_particles=900, spec="MARK",
                            r_cut=0.9, seed=2019)
        spec = JobRequest(kind="kernel", scenario="water n=900")
        assert spec.kernel_spec_name == "MARK"
        assert execute_kernel_request(legacy) == \
            execute_kernel_request(spec)

    def test_md_water_spec_matches_legacy(self):
        legacy = JobRequest(kind="md", n_particles=300, steps=3, level=3,
                            r_cut=0.45, seed=2019)
        spec = JobRequest(kind="md",
                          scenario="water n=300 rcut=0.45 rung=fused",
                          steps=3)
        a = execute_md_request(legacy)
        b = execute_md_request(spec)
        assert a["positions_fp"] == b["positions_fp"]
        assert a["potential"] == b["potential"]

    def test_rung_selects_strategy(self):
        for rung, name in (("ori", "ORI"), ("cache", "CACHE"),
                           ("vec", "VEC"), ("fused", "MARK")):
            req = JobRequest(kind="kernel",
                             scenario=f"water rung={rung}")
            assert req.kernel_spec_name == name


class TestBatchExecution:
    def test_batch_groups_share_system(self):
        a = JobRequest(kind="kernel", scenario="water rung=fused")
        b = JobRequest(kind="kernel", scenario="water rung=cache")
        out = execute_batch((a, b))
        # Same system group, one short-range eval shared via StepCache.
        assert out.cache_stats["sr_evals"] == 1
        assert out.cache_stats["sr_hits"] >= 1
        assert np.isfinite(out.payloads[0]["energy"])

    def test_mixed_legacy_and_scenario_batch(self):
        legacy = JobRequest(kind="kernel", n_particles=900, spec="MARK")
        spec = JobRequest(kind="kernel", scenario="water n=900")
        out = execute_batch((legacy, spec))
        assert out.payloads[0] == out.payloads[1]

    def test_non_water_scenario_executes(self):
        req = JobRequest(kind="kernel",
                         scenario="ionic n=300 rcut=0.45 elec=pme "
                                  "rung=cache")
        payload = execute_kernel_request(req)
        assert np.isfinite(payload["energy"])


class TestResidency:
    def test_warmup_and_resident_batch(self):
        from repro.serve.residency import (
            ResidentCache,
            execute_batch_with,
            warmup_with,
        )

        cache = ResidentCache(capacity=4)
        req = JobRequest(kind="kernel", scenario="water n=900")
        info = warmup_with(cache, req)
        assert info["resident"] and info["built"]
        out = execute_batch_with(cache, (req,))
        assert np.isfinite(out.payloads[0]["energy"])
        # Legacy direct path agrees with the resident path.
        assert out.payloads[0] == execute_kernel_request(
            JobRequest(kind="kernel", n_particles=900, spec="MARK")
        )


class TestFleetRouting:
    def test_stable_key_handles_scenario_keys(self):
        from repro.fleet.ring import stable_key

        a = JobRequest(kind="kernel", scenario="water n=900 elec=rf")
        b = JobRequest(kind="kernel", scenario="water@spc seed=2019")
        c = JobRequest(kind="kernel", scenario="water n=1500")
        assert stable_key(a.system_key) == stable_key(b.system_key)
        assert stable_key(a.system_key) != stable_key(c.system_key)

    def test_ring_routes_scenario_requests_consistently(self):
        from repro.fleet.ring import HashRing

        ring = HashRing(vnodes=32)
        ring.add("w0")
        ring.add("w1")
        req = JobRequest(kind="kernel", scenario="water n=900")
        owner = ring.route(stable_key_of(req))
        assert owner in ("w0", "w1")
        assert ring.route(stable_key_of(req)) == owner


def stable_key_of(req):
    from repro.fleet.ring import stable_key

    return stable_key(req.system_key)
