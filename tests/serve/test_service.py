"""End-to-end service semantics: the guarantees DESIGN.md §10 promises.

* **bit-identity** — a served payload equals the direct executor call,
  including when N identical concurrent submissions dedup into one
  execution;
* **deterministic admission** — over-capacity/draining/invalid requests
  are rejected with wire-stable reason codes;
* **no lost jobs** — drain completes every accepted job and releases the
  shared pool backend;
* **failure charging** — crashes retry through `RetryPolicy` with real
  backoff; deterministic errors and expired deadlines fail fast with
  structured reasons.

Each test drives one fresh service on its own event loop via
``asyncio.run`` (no pytest-asyncio dependency).
"""

from __future__ import annotations

import asyncio
import threading
import time

import pytest

from repro.parallel import pool as pool_mod
from repro.parallel.pool import WorkerCrashError
from repro.resilience.retry import RetryPolicy
from repro.serve.jobs import BatchOutcome, JobRequest, execute_request
from repro.serve.queue import (
    REASON_DEADLINE,
    REASON_DRAINING,
    REASON_EXECUTION,
    REASON_INVALID,
    REASON_QUEUE_FULL,
    REASON_TENANT_QUOTA,
    REASON_TIMEOUT,
)
from repro.serve.service import (
    AdmissionRejected,
    ServeConfig,
    SimulationService,
)
from repro.trace.events import CAT_SERVE, SERVE_TRACK, Tracer

FAST = dict(n_particles=300, r_cut=0.45)


def req(**kw) -> JobRequest:
    return JobRequest(**{**FAST, **kw})


def run(coro):
    return asyncio.run(coro)


# ---------------------------------------------------------------------------
# Bit-identity (the acceptance criterion)
# ---------------------------------------------------------------------------


class TestBitIdentity:
    def test_served_kernel_equals_direct_call(self):
        request = req()
        direct = execute_request(request)

        async def scenario():
            async with SimulationService(ServeConfig(max_depth=4)) as svc:
                return await svc.submit_and_wait(request)

        result = run(scenario())
        assert result.ok
        assert result.executed
        assert result.payload == direct

    def test_served_md_equals_direct_call(self):
        request = req(kind="md", steps=2)
        direct = execute_request(request)

        async def scenario():
            async with SimulationService(ServeConfig(max_depth=4)) as svc:
                return await svc.submit_and_wait(request)

        result = run(scenario())
        assert result.ok
        assert result.payload == direct

    def test_n_identical_requests_execute_once(self):
        # pause → submit 4 identical → resume: the batcher collapses
        # them into one unit; exactly one result is marked executed and
        # all four payloads equal the direct call.
        request = req()
        direct = execute_request(request)

        async def scenario():
            async with SimulationService(ServeConfig(max_depth=8)) as svc:
                await svc.pause()
                jobs = [await svc.submit(request) for _ in range(4)]
                await svc.resume()
                results = await asyncio.gather(*(j.future for j in jobs))
                return results, svc.stats

        results, stats = run(scenario())
        assert [r.executed for r in results] == [True, False, False, False]
        assert all(r.payload == direct for r in results)
        assert stats.executed_units == 1
        assert stats.dedup_hits == 3
        assert stats.completed == 4

    def test_late_arrival_joins_inflight_execution(self):
        # A request identical to one already executing joins it instead
        # of queueing a second execution (gated with events so the join
        # window is deterministic).
        request = req()
        direct = execute_request(request)

        async def scenario():
            svc = SimulationService(ServeConfig(max_depth=8))
            await svc.start()
            started = threading.Event()
            release = threading.Event()
            orig = svc._execute_blocking

            def gated(units, progress_paths=None):
                started.set()
                release.wait(10)
                return orig(units, progress_paths)

            svc._execute_blocking = gated
            first = await svc.submit(request)
            await asyncio.to_thread(started.wait, 10)
            second = await svc.submit(request)  # executing → joins in-flight
            release.set()
            r1, r2 = await asyncio.gather(first.future, second.future)
            stats = await svc.drain()
            return r1, r2, stats

        r1, r2, stats = run(scenario())
        assert r1.executed and not r2.executed
        assert r1.payload == r2.payload == direct
        assert stats.executed_units == 1
        assert stats.dedup_hits == 1

    def test_batched_specs_share_stepcache(self):
        # Compatible specs dispatched as one batch: payloads still match
        # the direct path, and the worker reports shared sr evaluations.
        requests = [req(spec=s) for s in ("MARK", "CACHE", "VEC")]
        direct = [execute_request(r) for r in requests]

        async def scenario():
            async with SimulationService(ServeConfig(max_depth=8)) as svc:
                await svc.pause()
                jobs = [await svc.submit(r) for r in requests]
                await svc.resume()
                results = await asyncio.gather(*(j.future for j in jobs))
                return results, svc.stats

        results, stats = run(scenario())
        assert [r.payload for r in results] == direct
        assert stats.batches == 1
        assert stats.executed_units == 3
        assert stats.sr_evals == 1
        assert stats.sr_hits == 2

    def test_dedup_off_executes_every_job(self):
        request = req()

        async def scenario():
            config = ServeConfig(max_depth=8, dedup=False, max_inflight=1)
            async with SimulationService(config) as svc:
                await svc.pause()
                jobs = [await svc.submit(request) for _ in range(3)]
                await svc.resume()
                results = await asyncio.gather(*(j.future for j in jobs))
                return results, svc.stats

        results, stats = run(scenario())
        assert all(r.executed for r in results)
        assert stats.executed_units == 3
        assert stats.dedup_hits == 0


# ---------------------------------------------------------------------------
# Admission control
# ---------------------------------------------------------------------------


class TestAdmission:
    def test_queue_full_rejected_with_reason(self):
        async def scenario():
            config = ServeConfig(max_depth=2)
            async with SimulationService(config) as svc:
                await svc.pause()
                await svc.submit(req(seed=1))
                await svc.submit(req(seed=2))
                with pytest.raises(AdmissionRejected) as exc:
                    await svc.submit(req(seed=3))
                await svc.resume()
                return exc.value.error, svc.stats

        error, stats = run(scenario())
        assert error.code == REASON_QUEUE_FULL
        assert stats.rejected_by_reason == {REASON_QUEUE_FULL: 1}
        # The two accepted jobs still completed.
        assert stats.completed == 2

    def test_tenant_quota_rejected_other_tenant_admitted(self):
        async def scenario():
            config = ServeConfig(max_depth=8, max_per_tenant=1)
            async with SimulationService(config) as svc:
                await svc.pause()
                await svc.submit(req(seed=1, tenant="a"))
                with pytest.raises(AdmissionRejected) as exc:
                    await svc.submit(req(seed=2, tenant="a"))
                await svc.submit(req(seed=3, tenant="b"))
                await svc.resume()
                return exc.value.error, svc.stats

        error, stats = run(scenario())
        assert error.code == REASON_TENANT_QUOTA
        assert stats.accepted == 2

    def test_invalid_request_rejected(self):
        async def scenario():
            async with SimulationService(ServeConfig(max_depth=4)) as svc:
                with pytest.raises(AdmissionRejected) as exc:
                    await svc.submit(req(spec="NOPE"))
                return exc.value.error

        assert run(scenario()).code == REASON_INVALID

    def test_draining_service_rejects(self):
        async def scenario():
            svc = SimulationService(ServeConfig(max_depth=4))
            await svc.start()
            await svc.drain()
            with pytest.raises(AdmissionRejected) as exc:
                await svc.submit(req())
            return exc.value.error

        assert run(scenario()).code == REASON_DRAINING

    def test_dedup_does_not_bypass_admission(self):
        # An identical duplicate still counts against the queue bound
        # while queued (dedup collapses at dispatch, not admission).
        async def scenario():
            config = ServeConfig(max_depth=2)
            async with SimulationService(config) as svc:
                await svc.pause()
                await svc.submit(req())
                await svc.submit(req())
                with pytest.raises(AdmissionRejected) as exc:
                    await svc.submit(req())
                await svc.resume()
                return exc.value.error

        assert run(scenario()).code == REASON_QUEUE_FULL


# ---------------------------------------------------------------------------
# Drain
# ---------------------------------------------------------------------------


class TestDrain:
    def test_drain_completes_all_accepted_jobs(self):
        async def scenario():
            config = ServeConfig(max_depth=16)
            svc = SimulationService(config)
            await svc.start()
            await svc.pause()
            jobs = [
                await svc.submit(req(spec=s))
                for s in ("MARK", "CACHE", "VEC", "PKG")
            ]
            # Drain un-pauses and must finish everything already accepted.
            stats = await svc.drain()
            results = [j.future.result() for j in jobs]
            return stats, results

        stats, results = run(scenario())
        assert stats.drained
        assert all(r.ok for r in results)
        assert stats.completed == 4
        assert stats.failed == 0

    def test_drain_is_idempotent(self):
        async def scenario():
            svc = SimulationService(ServeConfig(max_depth=4))
            await svc.start()
            first = await svc.drain()
            second = await svc.drain()
            return first, second

        first, second = run(scenario())
        assert first.drained and second.drained

    def test_drain_closes_shared_backend(self):
        async def scenario():
            svc = SimulationService(ServeConfig(max_depth=4))
            await svc.start()
            await svc.submit_and_wait(req())
            assert pool_mod._SHARED_BACKENDS  # service holds the backend
            await svc.drain()
            return dict(pool_mod._SHARED_BACKENDS), svc.backend

        registry, backend = run(scenario())
        assert registry == {}
        assert backend is None

    def test_run_until_drained_wakes_on_drain(self):
        async def scenario():
            svc = SimulationService(ServeConfig(max_depth=4))
            await svc.start()
            waiter = asyncio.create_task(svc.run_until_drained())
            await svc.submit_and_wait(req())
            await svc.drain()
            stats = await asyncio.wait_for(waiter, timeout=5)
            return stats

        assert run(scenario()).drained


# ---------------------------------------------------------------------------
# Failures, deadlines, retries
# ---------------------------------------------------------------------------


class TestFailures:
    def test_worker_crash_retries_then_succeeds(self):
        request = req()
        direct = execute_request(request)

        async def scenario():
            config = ServeConfig(
                max_depth=4,
                retry=RetryPolicy(max_attempts=3),
                backoff_cycle_s=0.0,
            )
            svc = SimulationService(config)
            await svc.start()
            orig = svc._execute_blocking
            calls = {"n": 0}

            def flaky(units, progress_paths=None):
                calls["n"] += 1
                if calls["n"] < 3:
                    raise WorkerCrashError("worker process died")
                return orig(units, progress_paths)

            svc._execute_blocking = flaky
            result = await svc.submit_and_wait(request)
            stats = await svc.drain()
            return result, stats

        result, stats = run(scenario())
        assert result.ok
        assert result.attempts == 3
        assert result.payload == direct
        assert stats.retries == 2

    def test_worker_crash_exhausts_attempts(self):
        async def scenario():
            config = ServeConfig(
                max_depth=4,
                retry=RetryPolicy(max_attempts=2),
                backoff_cycle_s=0.0,
            )
            svc = SimulationService(config)
            await svc.start()

            def always_crash(units, progress_paths=None):
                raise WorkerCrashError("worker process died")

            svc._execute_blocking = always_crash
            result = await svc.submit_and_wait(req())
            stats = await svc.drain()
            return result, stats

        result, stats = run(scenario())
        assert not result.ok
        assert result.error.code == REASON_EXECUTION
        assert "2 attempt" in result.error.message
        assert stats.retries == 1
        assert stats.failed_by_reason == {REASON_EXECUTION: 1}

    def test_deterministic_error_fails_fast(self):
        # A ValueError would recur on every reissue: exactly one attempt.
        async def scenario():
            svc = SimulationService(ServeConfig(max_depth=4))
            await svc.start()

            def boom(units, progress_paths=None):
                raise ValueError("bad physics")

            svc._execute_blocking = boom
            result = await svc.submit_and_wait(req())
            stats = await svc.drain()
            return result, stats

        result, stats = run(scenario())
        assert not result.ok
        assert result.error.code == REASON_EXECUTION
        assert "bad physics" in result.error.message
        assert result.attempts == 1
        assert stats.retries == 0

    def test_deadline_expired_before_dispatch(self):
        async def scenario():
            svc = SimulationService(ServeConfig(max_depth=4))
            await svc.start()
            await svc.pause()
            job = await svc.submit(req(timeout_s=0.01))
            await asyncio.sleep(0.05)
            await svc.resume()
            result = await job.future
            stats = await svc.drain()
            return result, stats

        result, stats = run(scenario())
        assert not result.ok
        assert result.error.code == REASON_DEADLINE
        assert stats.failed_by_reason == {REASON_DEADLINE: 1}
        assert stats.executed_units == 0

    def test_execution_timeout(self):
        async def scenario():
            svc = SimulationService(ServeConfig(max_depth=4))
            await svc.start()

            def slow(units, progress_paths=None):
                time.sleep(0.4)
                return BatchOutcome(payloads=[{"x": 1}])

            svc._execute_blocking = slow
            result = await svc.submit_and_wait(req(timeout_s=0.05))
            stats = await svc.drain()
            return result, stats

        result, stats = run(scenario())
        assert not result.ok
        assert result.error.code == REASON_TIMEOUT
        assert stats.failed_by_reason == {REASON_TIMEOUT: 1}

    def test_mixed_deadlines_do_not_cap_unbounded_jobs(self):
        # One job with a (generous) deadline batched with one without:
        # the batch must not inherit a finite timeout window, and both
        # complete.
        async def scenario():
            async with SimulationService(ServeConfig(max_depth=8)) as svc:
                await svc.pause()
                a = await svc.submit(req(timeout_s=30.0))
                b = await svc.submit(req())
                await svc.resume()
                return await asyncio.gather(a.future, b.future)

        ra, rb = run(scenario())
        assert ra.ok and rb.ok


# ---------------------------------------------------------------------------
# Fair-share dispatch order
# ---------------------------------------------------------------------------


class TestFairShare:
    def test_interleaves_tenants_deterministically(self):
        # Tenant "a" floods 3 distinct jobs, "b" submits 1; with one
        # dispatch slot the schedule must be a, b, a, a — not a, a, a, b.
        async def scenario():
            config = ServeConfig(max_depth=16, max_inflight=1)
            async with SimulationService(config) as svc:
                await svc.pause()
                jobs = [
                    await svc.submit(req(seed=1, tenant="a")),
                    await svc.submit(req(seed=2, tenant="a")),
                    await svc.submit(req(seed=3, tenant="a")),
                    await svc.submit(req(seed=4, tenant="b")),
                ]
                await svc.resume()
                await asyncio.gather(*(j.future for j in jobs))
                order = sorted(jobs, key=lambda j: j.dispatched_at)
                return [j.request.tenant for j in order]

        assert run(scenario()) == ["a", "b", "a", "a"]


# ---------------------------------------------------------------------------
# Tracing
# ---------------------------------------------------------------------------


class TestTracing:
    def test_serve_spans_recorded(self):
        tracer = Tracer()

        async def scenario():
            svc = SimulationService(ServeConfig(max_depth=8), tracer=tracer)
            await svc.start()
            await svc.pause()
            jobs = [await svc.submit(req()) for _ in range(2)]
            await svc.resume()
            await asyncio.gather(*(j.future for j in jobs))
            with pytest.raises(AdmissionRejected):
                await svc.submit(req(spec="NOPE"))
            await svc.drain()

        run(scenario())
        serve = [e for e in tracer.events if e.category == CAT_SERVE]
        names = [e.name for e in serve]
        assert all(e.cpe_id == SERVE_TRACK for e in serve)
        assert "queue:1" in names and "exec:1" in names
        assert "queue:2" in names and "exec:2" in names
        assert f"reject:{REASON_INVALID}" in names

    def test_exec_span_marks_dedup_fanout(self):
        tracer = Tracer()

        async def scenario():
            svc = SimulationService(ServeConfig(max_depth=8), tracer=tracer)
            await svc.start()
            await svc.pause()
            jobs = [await svc.submit(req()) for _ in range(2)]
            await svc.resume()
            await asyncio.gather(*(j.future for j in jobs))
            await svc.drain()

        run(scenario())
        execs = [
            e for e in tracer.events
            if e.category == CAT_SERVE and e.name.startswith("exec:")
        ]
        assert sorted(e.args["executed"] for e in execs) == [False, True]


# ---------------------------------------------------------------------------
# Wire protocol
# ---------------------------------------------------------------------------


class TestSockets:
    def test_unix_socket_full_session(self, tmp_path):
        # The smoke scenario, end to end over the Unix socket: ping →
        # pause → fill the queue → deterministic rejection → resume →
        # both results → client-driven drain.
        from repro.serve.client import ServeClient, ServeRequestError

        sock = str(tmp_path / "serve.sock")
        direct = execute_request(req(seed=1))

        async def scenario():
            config = ServeConfig(max_depth=2, max_inflight=1)
            svc = SimulationService(config)
            await svc.start()
            await svc.serve_unix(sock)
            client = ServeClient(socket_path=sock, timeout=30)

            def drive():
                assert client.ping()
                client.pause()
                id1 = client.submit(req(seed=1), wait=False)
                id2 = client.submit(req(seed=2), wait=False)
                try:
                    client.submit(req(seed=3), wait=False)
                    rejected = None
                except ServeRequestError as exc:
                    rejected = exc.code
                client.resume()
                r1 = client.wait(id1)
                r2 = client.wait(id2)
                stats = client.drain()
                return rejected, r1, r2, stats

            driver = asyncio.to_thread(drive)
            waiter = svc.run_until_drained()
            (rejected, r1, r2, stats), _ = await asyncio.gather(
                driver, waiter
            )
            return rejected, r1, r2, stats

        rejected, r1, r2, stats = run(scenario())
        assert rejected == REASON_QUEUE_FULL
        assert r1.ok and r2.ok
        assert r1.payload == direct
        assert stats["completed"] == 2
        assert stats["rejected_by_reason"] == {REASON_QUEUE_FULL: 1}
        assert stats["drained"] is True

    def test_tcp_socket_submit_and_wait(self):
        from repro.serve.client import ServeClient

        request = req()
        direct = execute_request(request)

        async def scenario():
            svc = SimulationService(ServeConfig(max_depth=4))
            await svc.start()
            port = await svc.serve_tcp("127.0.0.1", 0)
            client = ServeClient(host="127.0.0.1", port=port, timeout=30)

            def drive():
                result = client.submit(request)
                stats = client.stats()
                client.drain()
                return result, stats

            (result, stats), _ = await asyncio.gather(
                asyncio.to_thread(drive), svc.run_until_drained()
            )
            return result, stats

        result, stats = run(scenario())
        assert result.ok and result.payload == direct
        assert stats["stats"]["completed"] == 1
        assert stats["queue_depth"] == 0

    def test_malformed_and_unknown_ops(self, tmp_path):
        import json
        import socket as socket_mod

        sock = str(tmp_path / "serve.sock")

        async def scenario():
            svc = SimulationService(ServeConfig(max_depth=4))
            await svc.start()
            await svc.serve_unix(sock)

            def raw_request(line: bytes) -> dict:
                with socket_mod.socket(
                    socket_mod.AF_UNIX, socket_mod.SOCK_STREAM
                ) as s:
                    s.settimeout(10)
                    s.connect(sock)
                    s.sendall(line)
                    data = b""
                    while not data.endswith(b"\n"):
                        chunk = s.recv(65536)
                        if not chunk:
                            break
                        data += chunk
                return json.loads(data)

            garbage = await asyncio.to_thread(raw_request, b"not json\n")
            unknown = await asyncio.to_thread(
                raw_request, b'{"op": "teleport"}\n'
            )
            unknown_job = await asyncio.to_thread(
                raw_request, b'{"op": "wait", "job_id": 999}\n'
            )
            await svc.drain()
            return garbage, unknown, unknown_job

        garbage, unknown, unknown_job = run(scenario())
        assert garbage["ok"] is False
        assert garbage["error"]["code"] == "bad_request"
        assert unknown["error"]["code"] == "unknown_op"
        assert unknown_job["error"]["code"] == "unknown_job"


# ---------------------------------------------------------------------------
# Config validation
# ---------------------------------------------------------------------------


class TestConfig:
    def test_bad_bounds_rejected(self):
        with pytest.raises(ValueError):
            ServeConfig(max_inflight=0)
        with pytest.raises(ValueError):
            ServeConfig(backoff_cycle_s=-1.0)

    def test_drain_before_start_rejected(self):
        svc = SimulationService(ServeConfig())
        with pytest.raises(RuntimeError, match="never started"):
            run(svc.drain())
