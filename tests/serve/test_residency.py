"""Resident-state warm workers (DESIGN.md §14).

The contract under test: residency moves *when* simulation state is
built, never *what* is computed.  Every payload served off a warm
`ResidentSim` entry must be bit-identical to a cold build — across
kernel implementations, across backends, across LRU eviction, drift
invalidation, and lane crashes.  On top of that sit the serving
behaviours: affinity routing gives repeat systems the same lane, the
``warmup`` op pre-builds residency, and the ``stats`` op reports
occupancy and hit rate.
"""

from __future__ import annotations

import asyncio

import numpy as np
import pytest

from repro.parallel.pool import PoolBackend, SerialBackend, WorkerCrashError
from repro.serve.jobs import JobRequest, execute_batch, execute_request
from repro.serve.residency import (
    ResidentBatchTask,
    ResidentCache,
    WarmupTask,
    execute_batch_resident,
    execute_batch_with,
    lane_for_system,
    resident_key,
    warmup_job,
)
from repro.serve.service import ServeConfig, SimulationService

FAST = dict(n_particles=300, r_cut=0.45)


def req(**kw) -> JobRequest:
    return JobRequest(**{**FAST, **kw})


def run(coro):
    return asyncio.run(coro)


# ---------------------------------------------------------------------------
# ResidentCache: LRU, drift guard, invalidation
# ---------------------------------------------------------------------------


class TestResidentCache:
    def test_build_once_then_hit(self):
        cache = ResidentCache(capacity=2)
        a = cache.get_or_build(req(seed=1))
        b = cache.get_or_build(req(seed=1))
        assert a is b
        assert cache.stats.builds == 1
        assert cache.stats.hits == 1
        assert cache.stats.misses == 1

    def test_spec_shares_system_entry(self):
        # Same system key, different strategy spec: one resident entry.
        cache = ResidentCache(capacity=2)
        a = cache.get_or_build(req(seed=1, spec="MARK"))
        b = cache.get_or_build(req(seed=1, spec="CACHE"))
        assert a is b
        assert len(cache) == 1

    def test_lru_eviction_under_pressure(self):
        cache = ResidentCache(capacity=2)
        cache.get_or_build(req(seed=1))
        cache.get_or_build(req(seed=2))
        cache.get_or_build(req(seed=1))  # refresh: seed 2 is now LRU
        cache.get_or_build(req(seed=3))  # evicts seed 2
        assert len(cache) == 2
        assert cache.stats.evictions == 1
        keys = cache.keys()
        assert resident_key(req(seed=2)) not in keys
        assert resident_key(req(seed=1)) in keys
        # The evicted system rebuilds (a miss, never an error).
        cache.get_or_build(req(seed=2))
        assert cache.stats.builds == 4

    def test_drift_guard_invalidates_mutated_state(self):
        cache = ResidentCache(capacity=2)
        entry = cache.get_or_build(req(seed=1))
        clean = np.array(entry.system.positions)
        entry.system.positions[0, 0] += 1e-3  # simulate drift/corruption
        again = cache.get_or_build(req(seed=1))
        assert again is not entry
        assert cache.stats.invalidations == 1
        assert cache.stats.builds == 2
        # The rebuild is the deterministic cold build, not the drifted one.
        np.testing.assert_array_equal(again.system.positions, clean)

    def test_set_capacity_evicts_down(self):
        cache = ResidentCache(capacity=3)
        for seed in (1, 2, 3):
            cache.get_or_build(req(seed=seed))
        cache.set_capacity(1)
        assert len(cache) == 1
        assert cache.keys() == [resident_key(req(seed=3))]  # newest survives

    def test_invalidate_all(self):
        cache = ResidentCache(capacity=4)
        cache.get_or_build(req(seed=1))
        cache.get_or_build(req(seed=2))
        assert cache.invalidate() == 2
        assert len(cache) == 0

    def test_capacity_validated(self):
        with pytest.raises(ValueError):
            ResidentCache(capacity=0)

    def test_key_tracks_kernel_impl(self, monkeypatch):
        monkeypatch.delenv("REPRO_KERNEL", raising=False)
        scalar_key = resident_key(req(seed=1))
        monkeypatch.setenv("REPRO_KERNEL", "vectorized")
        vector_key = resident_key(req(seed=1))
        assert scalar_key != vector_key  # stale-impl state can never answer


# ---------------------------------------------------------------------------
# Affinity: deterministic lane routing
# ---------------------------------------------------------------------------


class TestLaneRouting:
    def test_deterministic_and_in_range(self):
        keys = [req(seed=s).system_key for s in range(20)]
        lanes = [lane_for_system(k, 4) for k in keys]
        assert lanes == [lane_for_system(k, 4) for k in keys]
        assert all(0 <= lane < 4 for lane in lanes)
        assert len(set(lanes)) > 1  # systems actually spread over lanes

    def test_single_lane_short_circuits(self):
        assert lane_for_system(req().system_key, 1) == 0


# ---------------------------------------------------------------------------
# Bit-identity: serial vs resident, across kernel_impl x backend
# ---------------------------------------------------------------------------


class TestBitIdentityMatrix:
    @pytest.mark.parametrize("impl", ["scalar", "vectorized"])
    @pytest.mark.parametrize("backend_kind", ["serial", "pool"])
    def test_resident_payloads_equal_cold(
        self, impl, backend_kind, monkeypatch
    ):
        monkeypatch.setenv("REPRO_KERNEL", impl)
        requests = tuple(
            req(seed=1, spec=spec) for spec in ("MARK", "CACHE", "VEC")
        )
        cold = execute_batch(requests).payloads

        async def scenario(config):
            payloads = []
            async with SimulationService(config) as svc:
                for _ in range(2):  # second pass runs fully warm
                    for request in requests:
                        result = await svc.submit_and_wait(request)
                        assert result.ok
                        payloads.append(result.payload)
            return payloads

        if backend_kind == "serial":
            config = ServeConfig(max_depth=8, backend="serial", dedup=False)
            payloads = run(scenario(config))
        else:
            backend = PoolBackend(2)  # forked after setenv: workers see impl
            try:
                config = ServeConfig(max_depth=8, backend=backend, dedup=False)
                payloads = run(scenario(config))
            finally:
                backend.close()
        assert payloads == cold + cold

    def test_execute_batch_with_matches_cold_batch(self):
        requests = tuple(req(seed=3, spec=spec) for spec in ("MARK", "PKG"))
        cold = execute_batch(requests)
        cache = ResidentCache(capacity=2)
        warm1 = execute_batch_with(cache, requests)
        warm2 = execute_batch_with(cache, requests)  # pure residency hit
        assert warm1.payloads == cold.payloads
        assert warm2.payloads == cold.payloads
        assert warm2.cache_stats["resident_hits"] >= 1
        assert warm2.cache_stats["resident_builds"] == 0


# ---------------------------------------------------------------------------
# Crash semantics: a dead lane loses residency, never correctness
# ---------------------------------------------------------------------------


def _exit_hard(_):
    import os

    os._exit(23)


class TestCrashEvictsResidency:
    def test_lane_crash_then_bit_identical_rebuild(self):
        task = ResidentBatchTask(requests=(req(seed=4),), capacity=2)
        with PoolBackend(1) as backend:
            warm = backend.run_on(0, execute_batch_resident, task)
            again = backend.run_on(0, execute_batch_resident, task)
            assert again.cache_stats["resident_hits"] == 1
            with pytest.raises(WorkerCrashError):
                backend.run_on(0, _exit_hard, None)
            # Fresh lane process: residency is gone (a build, not a hit),
            # and the payload is bitwise what the warm lane served.
            rebuilt = backend.run_on(0, execute_batch_resident, task)
        assert rebuilt.cache_stats["resident_builds"] == 1
        assert rebuilt.cache_stats["resident_hits"] == 0
        assert rebuilt.payloads == warm.payloads

    def test_service_survives_lane_crash(self):
        async def scenario():
            backend = PoolBackend(1)
            try:
                config = ServeConfig(max_depth=8, backend=backend)
                async with SimulationService(config) as svc:
                    first = await svc.submit_and_wait(req(seed=5))
                    # Kill the lane out from under the service.
                    with pytest.raises(WorkerCrashError):
                        backend.run_on(0, _exit_hard, None)
                    second = await svc.submit_and_wait(
                        req(seed=5, spec="CACHE")
                    )
                    return first, second
            finally:
                backend.close()

        first, second = run(scenario())
        assert first.ok and second.ok
        direct = execute_request(req(seed=5, spec="CACHE"))
        assert second.payload == direct


# ---------------------------------------------------------------------------
# Warmup: the op, the counters, the stats surface
# ---------------------------------------------------------------------------


class TestWarmup:
    def test_warmup_then_burst_is_all_hits(self):
        async def scenario():
            config = ServeConfig(max_depth=8, backend="serial", dedup=False)
            async with SimulationService(config) as svc:
                info = await svc.warmup(req(seed=6))
                results = [
                    await svc.submit_and_wait(req(seed=6, spec=spec))
                    for spec in ("MARK", "CACHE", "VEC")
                ]
                return info, results, svc.resident_summary()

        info, results, summary = run(scenario())
        assert info["resident"] and info["built"]
        assert all(r.ok for r in results)
        assert summary["hits"] == 3  # every burst job rode the warm entry
        assert summary["misses"] == 0
        assert summary["warmups"] == 1
        assert summary["hit_rate"] == 1.0

    def test_warmup_idempotent(self):
        async def scenario():
            config = ServeConfig(max_depth=8, backend="serial")
            async with SimulationService(config) as svc:
                first = await svc.warmup(req(seed=7))
                second = await svc.warmup(req(seed=7))
                return first, second

        first, second = run(scenario())
        assert first["built"] is True
        assert second["built"] is False  # already warm

    def test_warmup_md_reports_cold(self):
        assert warmup_job(WarmupTask(request=req(kind="md", steps=1))) == {
            "resident": False,
            "reason": "md jobs execute cold",
        }

    def test_warmup_disabled_reports_reason(self):
        async def scenario():
            config = ServeConfig(max_depth=8, resident=False)
            async with SimulationService(config) as svc:
                return await svc.warmup(req(seed=8))

        info = run(scenario())
        assert info["resident"] is False
        assert "disabled" in info["reason"]

    def test_warmup_wire_op_and_stats_block(self):
        async def scenario():
            config = ServeConfig(max_depth=8, backend="serial")
            async with SimulationService(config) as svc:
                warm = await svc._dispatch_op(
                    {"op": "warmup", "job": req(seed=9).to_dict()}
                )
                await svc.submit_and_wait(req(seed=9))
                stats = await svc._dispatch_op({"op": "stats"})
                return warm, stats

        warm, stats = run(scenario())
        assert warm["ok"] and warm["warmup"]["resident"]
        resident = stats["resident"]
        assert resident["enabled"] is True
        assert resident["hits"] >= 1
        assert resident["occupancy"] >= 1
        assert stats["stats"]["warmups"] == 1


# ---------------------------------------------------------------------------
# Ablation: resident=False is the historical cold path
# ---------------------------------------------------------------------------


class TestAblation:
    def test_cold_dispatch_matches_resident_payloads(self):
        async def scenario(resident):
            config = ServeConfig(
                max_depth=8, backend="serial", resident=resident
            )
            async with SimulationService(config) as svc:
                result = await svc.submit_and_wait(req(seed=10))
                return result.payload, svc.resident_summary()

        warm_payload, warm_summary = run(scenario(True))
        cold_payload, cold_summary = run(scenario(False))
        assert warm_payload == cold_payload
        assert cold_summary["enabled"] is False
        assert cold_summary["hits"] == cold_summary["misses"] == 0

    def test_return_forces_round_trips_both_paths(self):
        direct = execute_request(req(seed=11, return_forces=True))

        async def scenario(backend):
            config = ServeConfig(max_depth=8, backend=backend)
            async with SimulationService(config) as svc:
                result = await svc.submit_and_wait(
                    req(seed=11, return_forces=True)
                )
                return result

        serial = run(scenario("serial"))
        np.testing.assert_array_equal(
            serial.payload["forces"], direct["forces"]
        )
        backend = PoolBackend(1)
        try:
            pooled = run(scenario(backend))
        finally:
            backend.close()
        # Pool forces travelled through the shared-memory arena.
        np.testing.assert_array_equal(
            pooled.payload["forces"], direct["forces"]
        )
        # And the wire form is plain JSON lists.
        wire = pooled.to_dict()
        assert wire["payload"]["forces"] == direct["forces"].tolist()

    def test_forces_join_fingerprint_only_when_set(self):
        plain = req(seed=12)
        with_forces = req(seed=12, return_forces=True)
        assert plain.fingerprint != with_forces.fingerprint
        assert "return_forces" not in plain.canonical()
        assert plain.system_key == with_forces.system_key
