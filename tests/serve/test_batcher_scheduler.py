"""Batcher coalescing and fair-share scheduling, as pure data-structure
tests (no event loop, no execution).

The batcher's contract: identical fingerprints always collapse into one
unit (even past ``max_batch`` — dedup is free); distinct-but-compatible
requests batch up to ``max_batch`` units; incompatible jobs stay queued.
The scheduler's contract: deterministic min-virtual-time dispatch with
idle-tenant catch-up, charged per member job.
"""

from __future__ import annotations

import itertools

import pytest

from repro.serve.batcher import Batch, Batcher
from repro.serve.jobs import JobRequest
from repro.serve.queue import Job, JobQueue
from repro.serve.scheduler import FairShareScheduler

FAST = dict(n_particles=300, r_cut=0.45)
_ids = itertools.count(1)


def make_job(**kw) -> Job:
    seq = next(_ids)
    return Job(request=JobRequest(**{**FAST, **kw}), job_id=seq, seq=seq)


class TestBatch:
    def test_add_dedups_by_fingerprint(self):
        batch = Batch()
        assert batch.add(make_job(seed=1)) is True
        assert batch.add(make_job(seed=1)) is False
        assert batch.add(make_job(seed=2)) is True
        assert batch.n_units == 2
        assert batch.n_jobs == 3
        assert batch.dedup_hits == 1

    def test_tenant_shares_count_jobs_not_units(self):
        batch = Batch()
        batch.add(make_job(tenant="a"))
        batch.add(make_job(tenant="b"))  # same fingerprint, other tenant
        batch.add(make_job(tenant="b", seed=2))
        assert batch.tenant_shares() == {"a": 1, "b": 2}


class TestBatcher:
    def test_identical_jobs_collapse_to_one_unit(self):
        q = JobQueue(max_depth=16)
        jobs = [make_job() for _ in range(4)]
        for job in jobs[1:]:
            q.push(job)
        batch = Batcher(max_batch=4).collect(jobs[0], q)
        assert batch.n_units == 1
        assert batch.n_jobs == 4
        assert batch.dedup_hits == 3
        assert len(q) == 0

    def test_compatible_specs_batch_together(self):
        q = JobQueue(max_depth=16)
        seed = make_job(spec="MARK")
        q.push(make_job(spec="CACHE"))
        q.push(make_job(spec="VEC"))
        batch = Batcher(max_batch=8).collect(seed, q)
        assert [u.spec for u in batch.units] == ["MARK", "CACHE", "VEC"]
        assert batch.dedup_hits == 0

    def test_incompatible_system_key_stays_queued(self):
        q = JobQueue(max_depth=16)
        seed = make_job(seed=1)
        other = make_job(seed=2)  # different system key
        q.push(other)
        batch = Batcher(max_batch=8).collect(seed, q)
        assert batch.n_units == 1
        assert len(q) == 1

    def test_max_batch_bounds_distinct_units(self):
        q = JobQueue(max_depth=16)
        seed = make_job(spec="MARK")
        for spec in ("CACHE", "VEC", "PKG", "ORI"):
            q.push(make_job(spec=spec))
        batch = Batcher(max_batch=3).collect(seed, q)
        assert batch.n_units == 3
        assert len(q) == 2

    def test_dedup_exceeds_max_batch_for_free(self):
        # max_batch bounds *units*; pure-dedup joins are always taken.
        q = JobQueue(max_depth=16)
        seed = make_job(spec="MARK")
        for _ in range(3):
            q.push(make_job(spec="MARK"))
        batch = Batcher(max_batch=1).collect(seed, q)
        assert batch.n_units == 1
        assert batch.n_jobs == 4
        assert len(q) == 0

    def test_cross_tenant_dedup(self):
        q = JobQueue(max_depth=16)
        seed = make_job(tenant="a")
        q.push(make_job(tenant="b"))
        batch = Batcher(max_batch=4).collect(seed, q)
        assert batch.n_units == 1
        assert batch.tenant_shares() == {"a": 1, "b": 1}

    def test_dedup_off_gives_singleton_batches(self):
        q = JobQueue(max_depth=16)
        seed = make_job()
        q.push(make_job())
        batch = Batcher(max_batch=8, dedup=False).collect(seed, q)
        assert batch.n_units == 1
        assert batch.n_jobs == 1
        assert len(q) == 1

    def test_bad_max_batch_rejected(self):
        with pytest.raises(ValueError):
            Batcher(max_batch=0)


class TestFairShareScheduler:
    def test_round_robin_between_equal_tenants(self):
        sched = FairShareScheduler()
        order = []
        for _ in range(4):
            tenant = sched.pick(["a", "b"])
            order.append(tenant)
            sched.charge({tenant: 1})
        assert order == ["a", "b", "a", "b"]

    def test_lighter_tenant_served_first(self):
        sched = FairShareScheduler()
        sched.charge({"a": 5, "b": 1})
        assert sched.pick(["a", "b"]) == "b"

    def test_new_tenant_enters_at_floor_not_zero(self):
        # A tenant with no history ties with the floor (then loses the
        # name tie-break) instead of jumping the whole line.
        sched = FairShareScheduler()
        sched.charge({"a": 5})
        assert sched.pick(["a", "b"]) == "a"
        assert sched.virtual_time("b") == 5.0

    def test_name_breaks_ties_deterministically(self):
        sched = FairShareScheduler()
        assert sched.pick(["zeta", "alpha"]) == "alpha"

    def test_idle_tenant_catches_up_to_floor(self):
        # Tenant "late" was idle while "busy" accumulated service; on
        # return it starts at the floor instead of banking idle credit.
        sched = FairShareScheduler()
        sched.charge({"busy": 10})
        sched.pick(["busy", "late"])
        assert sched.virtual_time("late") == 10.0

    def test_charge_is_per_tenant(self):
        sched = FairShareScheduler()
        sched.charge({"a": 2, "b": 1})
        assert sched.virtual_time("a") == 2.0
        assert sched.virtual_time("b") == 1.0
        assert sched.as_dict() == {"a": 2.0, "b": 1.0}

    def test_empty_backlog_rejected(self):
        with pytest.raises(ValueError):
            FairShareScheduler().pick([])

    def test_weighted_service_ratio(self):
        # A tenant submitting 3x the work gets picked 1/(1+1) of the
        # time, not 3/4 — fair share is per tenant, not per job.
        sched = FairShareScheduler()
        picks = {"a": 0, "b": 0}
        for _ in range(12):
            tenant = sched.pick(["a", "b"])
            picks[tenant] += 1
            # "a" batches carry 3 jobs, "b" batches carry 1.
            sched.charge({tenant: 3 if tenant == "a" else 1})
        assert picks["b"] == 3 * picks["a"]
