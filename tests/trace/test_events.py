"""Tracer / NullTracer event-recording semantics."""

import pytest

from repro.hw.params import ChipParams
from repro.trace.events import (
    CAT_COMPUTE,
    CAT_DMA,
    DMA_TRACK,
    MPE_TRACK,
    NULL_TRACER,
    NullTracer,
    TraceEvent,
    Tracer,
    track_label,
)


class TestTraceEvent:
    def test_end_cycle(self):
        e = TraceEvent("x", CAT_COMPUTE, 0, 10.0, 5.0)
        assert e.end_cycle == 15.0

    def test_args_default_independent(self):
        a = TraceEvent("x", CAT_COMPUTE, 0, 0.0, 1.0)
        b = TraceEvent("y", CAT_COMPUTE, 0, 0.0, 1.0)
        a.args["k"] = 1
        assert b.args == {}


class TestNullTracer:
    def test_disabled(self):
        assert NULL_TRACER.enabled is False

    def test_all_methods_noop(self):
        t = NullTracer()
        t.span("a", CAT_COMPUTE, 0, 0.0, 1.0)
        t.emit("b", CAT_DMA, DMA_TRACK, 2.0)
        t.instant("c", CAT_COMPUTE, 1)
        t.span_seconds("d", CAT_COMPUTE, 0, 0.0, 1e-6)
        t.emit_seconds("e", CAT_COMPUTE, 0, 1e-6)
        t.advance(0, 100.0)
        assert t.cursor(0) == 0.0
        assert t.end_cycle() == 0.0

    def test_tracer_is_a_nulltracer(self):
        # so `tracer: NullTracer` annotations accept both implementations
        assert isinstance(Tracer(), NullTracer)


class TestSpanAndCursors:
    def test_span_records_absolute(self):
        t = Tracer()
        t.span("a", CAT_COMPUTE, 3, 100.0, 50.0, pairs=7)
        (e,) = t.events
        assert (e.name, e.category, e.cpe_id) == ("a", CAT_COMPUTE, 3)
        assert (e.start_cycle, e.duration_cycles) == (100.0, 50.0)
        assert e.args == {"pairs": 7}
        assert t.cursor(3) == 150.0

    def test_span_does_not_move_cursor_backwards(self):
        t = Tracer()
        t.span("a", CAT_COMPUTE, 0, 0.0, 100.0)
        t.span("b", CAT_COMPUTE, 0, 10.0, 20.0)  # ends before the first
        assert t.cursor(0) == 100.0

    def test_emit_chains_at_cursor(self):
        t = Tracer()
        t.emit("a", CAT_COMPUTE, 0, 10.0)
        t.emit("b", CAT_COMPUTE, 0, 5.0)
        assert [e.start_cycle for e in t.events] == [0.0, 10.0]
        assert t.cursor(0) == 15.0

    def test_cursors_are_per_track(self):
        t = Tracer()
        t.emit("a", CAT_COMPUTE, 0, 10.0)
        t.emit("b", CAT_DMA, DMA_TRACK, 3.0)
        assert t.cursor(0) == 10.0
        assert t.cursor(DMA_TRACK) == 3.0
        assert t.cursor(MPE_TRACK) == 0.0

    def test_instant_has_zero_duration(self):
        t = Tracer()
        t.emit("a", CAT_COMPUTE, 0, 10.0)
        t.instant("mark", CAT_COMPUTE, 0)
        assert t.events[-1].duration_cycles == 0.0
        assert t.events[-1].start_cycle == 10.0

    def test_advance_skips_without_event(self):
        t = Tracer()
        t.advance(0, 25.0)
        t.emit("a", CAT_COMPUTE, 0, 5.0)
        assert t.events[0].start_cycle == 25.0

    def test_negative_duration_rejected(self):
        t = Tracer()
        with pytest.raises(ValueError, match="negative duration"):
            t.span("a", CAT_COMPUTE, 0, 0.0, -1.0)
        with pytest.raises(ValueError, match="negative duration"):
            t.emit("a", CAT_COMPUTE, 0, -1e-9)

    def test_negative_advance_rejected(self):
        with pytest.raises(ValueError, match="backwards"):
            Tracer().advance(0, -1.0)


class TestSecondsHelpers:
    def test_seconds_convert_through_clock(self):
        params = ChipParams(clock_hz=2.0e9)
        t = Tracer(params)
        t.span_seconds("a", CAT_COMPUTE, 0, 1e-6, 2e-6)
        assert t.events[0].start_cycle == pytest.approx(2000.0)
        assert t.events[0].duration_cycles == pytest.approx(4000.0)
        t.emit_seconds("b", CAT_COMPUTE, 0, 1e-6)
        assert t.events[1].start_cycle == pytest.approx(6000.0)
        assert t.total_seconds() == pytest.approx(3e-6)


class TestQueries:
    def _loaded(self):
        t = Tracer()
        t.span("f", CAT_COMPUTE, 0, 0.0, 10.0)
        t.span("f", CAT_COMPUTE, 1, 0.0, 20.0)
        t.span("g", CAT_DMA, DMA_TRACK, 5.0, 40.0)
        return t

    def test_len_tracks_end(self):
        t = self._loaded()
        assert len(t) == 3
        assert t.tracks() == [DMA_TRACK, 0, 1]
        assert t.end_cycle() == 45.0

    def test_select(self):
        t = self._loaded()
        assert len(t.select(CAT_COMPUTE)) == 2
        assert len(t.select(cpe_id=1)) == 1
        assert len(t.select(CAT_DMA, DMA_TRACK)) == 1
        assert t.select("nope") == []

    def test_totals(self):
        t = self._loaded()
        assert t.total_cycles() == 70.0
        assert t.total_cycles(CAT_COMPUTE) == 30.0
        assert t.total_cycles(CAT_COMPUTE, cpe_id=1) == 20.0
        assert t.total_seconds(CAT_DMA) == pytest.approx(40.0 * t.params.cycle_s)

    def test_by_name_seconds(self):
        t = self._loaded()
        by_name = t.by_name_seconds()
        assert by_name["f"] == pytest.approx(30.0 * t.params.cycle_s)
        assert by_name["g"] == pytest.approx(40.0 * t.params.cycle_s)
        assert t.by_name_seconds(CAT_COMPUTE) == {
            "f": pytest.approx(30.0 * t.params.cycle_s)
        }

    def test_clear(self):
        t = self._loaded()
        t.clear()
        assert len(t) == 0
        assert t.cursor(0) == 0.0
        assert t.end_cycle() == 0.0


class TestTrackLabel:
    def test_labels(self):
        assert track_label(MPE_TRACK) == "MPE"
        assert track_label(DMA_TRACK) == "DMA"
        assert track_label(7) == "CPE 07"
        assert track_label(63) == "CPE 63"
        assert track_label(64) == "track 64"
