"""Timeline-derived metrics: overlap, occupancy, DMA histogram, roofline."""

import pytest

from repro.core.kernels import MARK, PKG, run_kernel
from repro.hw.dma import DmaEngine, bandwidth_table
from repro.hw.params import DEFAULT_PARAMS
from repro.trace.analyze import (
    dma_bandwidth_histogram,
    load_imbalance,
    measure_overlap,
    occupancy,
    roofline_point,
    summarize,
)
from repro.trace.events import CAT_COMPUTE, CAT_DMA, DMA_TRACK, Tracer


class TestMeasureOverlapSynthetic:
    def test_half_overlapped(self):
        t = Tracer()
        t.span("c", CAT_COMPUTE, 0, 0.0, 100.0)
        t.span("d", CAT_DMA, DMA_TRACK, 50.0, 100.0)
        ov = measure_overlap(t)
        assert ov.compute_cycles == 100.0
        assert ov.dma_cycles == 100.0
        assert ov.makespan_cycles == 150.0
        assert ov.overlap_fraction == pytest.approx(0.5)

    def test_serial_phases_have_zero_overlap(self):
        t = Tracer()
        t.span("c", CAT_COMPUTE, 0, 0.0, 100.0)
        t.span("d", CAT_DMA, DMA_TRACK, 100.0, 50.0)
        assert measure_overlap(t).overlap_fraction == pytest.approx(0.0)

    def test_fully_hidden_dma(self):
        t = Tracer()
        t.span("c", CAT_COMPUTE, 0, 0.0, 100.0)
        t.span("d", CAT_DMA, DMA_TRACK, 20.0, 30.0)
        assert measure_overlap(t).overlap_fraction == pytest.approx(1.0)

    def test_critical_cpe_defines_compute(self):
        t = Tracer()
        t.span("c", CAT_COMPUTE, 0, 0.0, 10.0)
        t.span("c", CAT_COMPUTE, 1, 0.0, 40.0)
        ov = measure_overlap(t)
        assert ov.compute_cycles == 40.0

    def test_empty_trace(self):
        ov = measure_overlap(Tracer())
        assert ov.makespan_cycles == 0.0
        assert ov.overlap_fraction == 1.0


class TestKernelOverlap:
    """Acceptance: the overlap measured from a traced kernel agrees with
    the ``ChipParams.pipeline_overlap`` the cost model assumed."""

    def test_pipelined_kernel_matches_assumed_overlap(
        self, water_small, plist_water_small, nb_water_small
    ):
        tracer = Tracer()
        run_kernel(
            water_small, plist_water_small, nb_water_small, MARK,
            tracer=tracer,
        )
        measured = measure_overlap(tracer).overlap_fraction
        assumed = DEFAULT_PARAMS.pipeline_overlap
        assert measured == pytest.approx(assumed, rel=0.05)

    def test_non_pipelined_kernel_measures_no_overlap(
        self, water_small, plist_water_small, nb_water_small
    ):
        tracer = Tracer()
        run_kernel(
            water_small, plist_water_small, nb_water_small, PKG,
            tracer=tracer,
        )
        assert not PKG.pipelined
        assert measure_overlap(tracer).overlap_fraction <= 0.05


class TestOccupancy:
    def test_busy_fractions(self):
        t = Tracer()
        t.span("c", CAT_COMPUTE, 0, 0.0, 100.0)
        t.span("c", CAT_COMPUTE, 1, 0.0, 50.0)
        occ = occupancy(t)
        assert occ[0] == pytest.approx(1.0)
        assert occ[1] == pytest.approx(0.5)

    def test_ignores_mpe_and_dma_tracks(self):
        t = Tracer()
        t.span("c", CAT_COMPUTE, 0, 0.0, 10.0)
        t.span("d", CAT_DMA, DMA_TRACK, 0.0, 500.0)
        assert occupancy(t) == {0: pytest.approx(1.0)}

    def test_imbalance_ratio(self):
        t = Tracer()
        t.span("c", CAT_COMPUTE, 0, 0.0, 100.0)
        t.span("c", CAT_COMPUTE, 1, 0.0, 50.0)
        # max / mean = 1.0 / 0.75
        assert load_imbalance(t) == pytest.approx(4.0 / 3.0)

    def test_imbalance_of_empty_trace_is_balanced(self):
        assert load_imbalance(Tracer()) == 1.0

    def test_traced_kernel_is_reasonably_balanced(
        self, water_small, plist_water_small, nb_water_small
    ):
        tracer = Tracer()
        run_kernel(
            water_small, plist_water_small, nb_water_small, MARK,
            tracer=tracer,
        )
        imb = load_imbalance(tracer)
        assert 1.0 <= imb < 3.0  # contiguous ranges, ~equal pair counts


class TestDmaHistogram:
    def test_regenerates_table2_from_events(self):
        """Driving Table 2's traffic through a traced engine reproduces
        the closed-form bandwidth_table() numbers from events alone."""
        tracer = Tracer()
        engine = DmaEngine(tracer=tracer)
        total = 64 * 1024 * 1024
        for size, _ in bandwidth_table():
            engine.get_bulk(size, max(1, total // size))
        hist = dma_bandwidth_histogram(tracer)
        measured = {b.size_bytes: b.bandwidth_gbs for b in hist}
        for size, gbs in bandwidth_table():
            assert measured[size] == pytest.approx(gbs, rel=1e-9)

    def test_buckets_sorted_and_counted(self):
        tracer = Tracer()
        engine = DmaEngine(tracer=tracer)
        engine.get_bulk(512, 4)
        engine.get(128)
        engine.get(128)
        hist = dma_bandwidth_histogram(tracer)
        assert [b.size_bytes for b in hist] == [128, 512]
        assert hist[0].n_transactions == 2
        assert hist[1].n_transactions == 4
        assert hist[1].bytes_total == 2048

    def test_aggregate_spans_without_size_are_skipped(self):
        t = Tracer()
        t.span("read_dma", CAT_DMA, DMA_TRACK, 0.0, 100.0, bytes=4096)
        assert dma_bandwidth_histogram(t) == []


class TestRoofline:
    def test_synthetic_point(self):
        t = Tracer()
        hz = t.params.clock_hz
        t.span("c", CAT_COMPUTE, 0, 0.0, hz * 1e-6, flops=2e5)
        t.span("d", CAT_DMA, DMA_TRACK, 0.0, hz * 1e-6, bytes=1e5)
        rl = roofline_point(t)
        assert rl.intensity == pytest.approx(2.0)
        assert rl.achieved_gflops == pytest.approx(200.0)
        assert rl.bound == "memory"  # ridge ~ 765/30 = 25 flop/byte
        assert rl.attainable_gflops == pytest.approx(
            2.0 * DEFAULT_PARAMS.dma_curve[-1][1]
        )

    def test_traced_kernel_is_memory_bound(
        self, water_small, plist_water_small, nb_water_small
    ):
        tracer = Tracer()
        run_kernel(
            water_small, plist_water_small, nb_water_small, MARK,
            tracer=tracer,
        )
        rl = roofline_point(tracer)
        assert rl.flops > 0
        assert rl.dma_bytes > 0
        # the paper's central claim: short-range MD on SW26010 sits under
        # the bandwidth roof, far left of the ridge
        assert rl.bound == "memory"
        assert 0 < rl.achieved_gflops <= rl.attainable_gflops * 1.01


class TestSummarize:
    def test_mentions_headline_metrics(
        self, water_small, plist_water_small, nb_water_small
    ):
        tracer = Tracer()
        run_kernel(
            water_small, plist_water_small, nb_water_small, MARK,
            tracer=tracer,
        )
        text = summarize(tracer)
        assert "measured overlap" in text
        assert "load imbalance" in text
        assert "arithmetic intensity" in text
