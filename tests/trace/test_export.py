"""Chrome-trace JSON export: schema validity and the CLI path."""

import json

import pytest

from repro import cli
from repro.trace.events import CAT_COMPUTE, CAT_DMA, DMA_TRACK, MPE_TRACK, Tracer
from repro.trace.export import (
    _TID_DMA,
    _TID_MPE,
    to_chrome_trace,
    validate_chrome_trace,
    write_chrome_trace,
)


def _small_tracer():
    t = Tracer()
    t.span("compute", CAT_COMPUTE, 0, 0.0, 100.0, pairs=8)
    t.span("fetch", CAT_DMA, DMA_TRACK, 10.0, 40.0)
    t.emit("collect", CAT_COMPUTE, MPE_TRACK, 25.0)
    return t


class TestToChromeTrace:
    def test_schema_valid(self):
        doc = to_chrome_trace(_small_tracer())
        assert validate_chrome_trace(doc) == []

    def test_track_metadata(self):
        doc = to_chrome_trace(_small_tracer())
        meta = [e for e in doc["traceEvents"] if e["ph"] == "M"]
        names = {e["args"]["name"] for e in meta if e["name"] == "thread_name"}
        assert names == {"CPE 00", "MPE", "DMA"}
        assert any(e["name"] == "process_name" for e in meta)

    def test_tid_mapping(self):
        doc = to_chrome_trace(_small_tracer())
        spans = {e["name"]: e for e in doc["traceEvents"] if e["ph"] == "X"}
        assert spans["compute"]["tid"] == 0
        assert spans["fetch"]["tid"] == _TID_DMA
        assert spans["collect"]["tid"] == _TID_MPE

    def test_microsecond_conversion(self):
        t = _small_tracer()
        doc = to_chrome_trace(t)
        spans = {e["name"]: e for e in doc["traceEvents"] if e["ph"] == "X"}
        us_per_cycle = 1e6 / t.params.clock_hz
        assert spans["fetch"]["ts"] == pytest.approx(10.0 * us_per_cycle)
        assert spans["fetch"]["dur"] == pytest.approx(40.0 * us_per_cycle)

    def test_args_carried(self):
        doc = to_chrome_trace(_small_tracer())
        spans = {e["name"]: e for e in doc["traceEvents"] if e["ph"] == "X"}
        assert spans["compute"]["args"] == {"pairs": 8}

    def test_write_round_trips(self, tmp_path):
        path = tmp_path / "t.json"
        doc = write_chrome_trace(_small_tracer(), str(path))
        assert json.loads(path.read_text()) == doc


class TestValidate:
    def test_flags_missing_trace_events(self):
        assert validate_chrome_trace({}) == ["traceEvents missing or not a list"]

    def test_flags_bad_phase_and_fields(self):
        doc = {
            "traceEvents": [
                {"ph": "Z", "pid": 0, "tid": 0},
                {"ph": "X", "pid": 0, "tid": 0, "name": "a", "ts": -1, "dur": 1},
                {"ph": "X", "pid": 0, "tid": 0, "ts": 0, "dur": 0},
                {"ph": "M", "name": "thread_name", "pid": 0, "tid": 0, "args": {}},
            ]
        }
        problems = validate_chrome_trace(doc)
        assert any("bad phase" in p for p in problems)
        assert any("bad ts" in p for p in problems)
        assert any("missing 'name'" in p for p in problems)
        assert any("metadata without args.name" in p for p in problems)

    def test_flags_non_serialisable(self):
        doc = to_chrome_trace(_small_tracer())
        doc["traceEvents"][0]["args"] = {"bad": object()}
        assert any(
            "not JSON-serialisable" in p for p in validate_chrome_trace(doc)
        )


class TestCliTrace:
    def test_water_box_trace_has_cpe_mpe_dma_tracks(self, tmp_path, capsys):
        """Acceptance: `repro trace` emits schema-valid Chrome JSON with
        >= 3 track kinds (CPE, MPE, DMA) for a water-box step."""
        out = tmp_path / "trace.json"
        rc = cli.main(
            ["trace", "-n", "750", "--steps", "1", "--rcut", "0.8",
             "--out", str(out)]
        )
        assert rc == 0
        doc = json.loads(out.read_text())
        assert validate_chrome_trace(doc) == []

        names = {
            e["args"]["name"]
            for e in doc["traceEvents"]
            if e["ph"] == "M" and e["name"] == "thread_name"
        }
        assert "MPE" in names
        assert "DMA" in names
        cpe_tracks = {n for n in names if n.startswith("CPE ")}
        assert len(cpe_tracks) >= 1
        assert len(names) >= 3

        spans = [e for e in doc["traceEvents"] if e["ph"] == "X"]
        assert spans, "trace carries no events"
        stdout = capsys.readouterr().out
        assert "perfetto" in stdout
        assert "measured overlap" in stdout
