"""KernelTiming <-> trace-event round-trips (per-kernel seconds agree).

Every step-phase duration an engine adds to its ``KernelTiming`` is also
emitted as a ``step_phase`` event, so summing events by name must
reproduce the timing table exactly — the trace is a faithful, finer-
grained view of the same accounting, not a second clock.
"""

import pytest

from repro.core.engine import EngineConfig, SWGromacsEngine
from repro.hw.params import DEFAULT_PARAMS
from repro.hw.perf import PerfCounters
from repro.md.mdloop import MdConfig, MdLoop
from repro.trace.events import (
    CAT_COMPUTE,
    CAT_DMA,
    CAT_GLD,
    CAT_GST,
    CAT_STEP,
    MPE_TRACK,
    Tracer,
)


def _assert_timings_match(timing_seconds, tracer):
    by_name = tracer.by_name_seconds(CAT_STEP)
    assert set(by_name) == set(timing_seconds)
    for kernel, seconds in timing_seconds.items():
        assert by_name[kernel] == pytest.approx(seconds, rel=1e-9), kernel


class TestEngineRoundTrip:
    def test_step_events_sum_to_kernel_timing(self, water_small, nb_water_small):
        tracer = Tracer()
        engine = SWGromacsEngine(
            water_small.copy(),
            EngineConfig(nonbonded=nb_water_small),
            tracer=tracer,
        )
        result = engine.run(3)
        assert result.timing.seconds, "engine recorded no kernel timings"
        _assert_timings_match(result.timing.seconds, tracer)

    def test_timing_total_matches_tracer_aggregate(
        self, water_small, nb_water_small
    ):
        tracer = Tracer()
        engine = SWGromacsEngine(
            water_small.copy(),
            EngineConfig(nonbonded=nb_water_small),
            tracer=tracer,
        )
        result = engine.run(2)
        assert tracer.total_seconds(CAT_STEP) == pytest.approx(
            result.timing.total(), rel=1e-9
        )


class TestMdLoopRoundTrip:
    def test_step_events_sum_to_kernel_timing(self, water_small, nb_water_small):
        tracer = Tracer()
        loop = MdLoop(
            water_small.copy(),
            MdConfig(nonbonded=nb_water_small),
            tracer=tracer,
        )
        result = loop.run(2)
        assert result.timing.seconds
        _assert_timings_match(result.timing.seconds, tracer)


class TestPerfCountersRoundTrip:
    def test_summary_matches_tracer_aggregates(self):
        tracer = Tracer()
        pc = PerfCounters(tracer=tracer)
        pc.charge_cpe_cycles(1000.0)
        pc.charge_cpe_cycles(500.0)
        pc.charge_mpe_cycles(200.0)
        pc.charge_gld(3)
        pc.charge_gst(2)
        pc.dma.get_bulk(512, 10)
        pc.dma.put(2048)

        s = pc.summary()
        assert tracer.total_seconds(CAT_COMPUTE, cpe_id=0) == pytest.approx(
            s["cpe_compute_s"]
        )
        assert tracer.total_seconds(CAT_COMPUTE, MPE_TRACK) == pytest.approx(
            s["mpe_compute_s"]
        )
        assert tracer.total_seconds(CAT_GLD) + tracer.total_seconds(
            CAT_GST
        ) == pytest.approx(s["gld_s"])
        assert tracer.total_seconds(CAT_DMA) == pytest.approx(s["dma_s"])

    def test_counters_share_timeline_with_dma_engine(self):
        tracer = Tracer()
        pc = PerfCounters(tracer=tracer)
        assert pc.dma.tracer is tracer
        pc.dma.get(256)
        assert tracer.select(CAT_DMA)

    def test_gld_latency_model_agrees(self):
        tracer = Tracer()
        pc = PerfCounters(tracer=tracer)
        pc.charge_gld(7)
        assert tracer.total_cycles(CAT_GLD) == pytest.approx(
            7 * DEFAULT_PARAMS.gld_latency_cycles
        )
