"""Checkpoint container: atomic writes, checksums, exact round trips."""

import os

import numpy as np
import pytest

from repro.md.integrator import IntegratorConfig, LeapfrogIntegrator
from repro.resilience import (
    CheckpointError,
    MdCheckpoint,
    capture,
    load_checkpoint,
    restore,
    save_checkpoint,
)
from repro.resilience.checkpoint import MAGIC


def _make_ckpt(n=12, with_ref=True, rng_seed=0):
    rng = np.random.default_rng(rng_seed)
    pos = rng.standard_normal((n, 3))
    return MdCheckpoint(
        step=17,
        positions=pos,
        velocities=rng.standard_normal((n, 3)),
        box_lengths=(2.0, 2.5, 3.0),
        integrator_state={"rng": {"state": 1}, "step_count": 17},
        pairlist_rebuild_step=10,
        pairlist_ref_positions=pos + 0.01 if with_ref else None,
        meta={"driver": "test"},
    )


class TestContainer:
    def test_round_trip_is_exact(self, tmp_path):
        ckpt = _make_ckpt()
        path = str(tmp_path / "state.ckpt")
        save_checkpoint(ckpt, path)
        back = load_checkpoint(path)
        # Bit-exact: float64 arrays survive untouched.
        assert np.array_equal(back.positions, ckpt.positions)
        assert np.array_equal(back.velocities, ckpt.velocities)
        assert np.array_equal(
            back.pairlist_ref_positions, ckpt.pairlist_ref_positions
        )
        assert back.step == ckpt.step
        assert back.box_lengths == ckpt.box_lengths
        assert back.integrator_state == ckpt.integrator_state
        assert back.pairlist_rebuild_step == 10
        assert back.pairlist_age == 7
        assert back.meta == {"driver": "test"}

    def test_round_trip_without_ref_positions(self, tmp_path):
        path = str(tmp_path / "s.ckpt")
        save_checkpoint(_make_ckpt(with_ref=False), path)
        assert load_checkpoint(path).pairlist_ref_positions is None

    def test_no_temp_file_left_behind(self, tmp_path):
        save_checkpoint(_make_ckpt(), str(tmp_path / "s.ckpt"))
        assert sorted(p.name for p in tmp_path.iterdir()) == ["s.ckpt"]

    def test_overwrite_is_atomic_replace(self, tmp_path):
        path = str(tmp_path / "s.ckpt")
        save_checkpoint(_make_ckpt(rng_seed=1), path)
        save_checkpoint(_make_ckpt(rng_seed=2), path)
        back = load_checkpoint(path)
        assert np.array_equal(back.positions, _make_ckpt(rng_seed=2).positions)

    def test_corruption_detected(self, tmp_path):
        path = str(tmp_path / "s.ckpt")
        save_checkpoint(_make_ckpt(), path)
        blob = bytearray(open(path, "rb").read())
        blob[-10] ^= 0xFF  # flip one payload byte
        with open(path, "wb") as fh:
            fh.write(blob)
        with pytest.raises(CheckpointError, match="checksum"):
            load_checkpoint(path)

    def test_truncation_detected(self, tmp_path):
        path = str(tmp_path / "s.ckpt")
        save_checkpoint(_make_ckpt(), path)
        blob = open(path, "rb").read()
        with open(path, "wb") as fh:
            fh.write(blob[: len(blob) // 2])
        with pytest.raises(CheckpointError, match="checksum"):
            load_checkpoint(path)

    def test_wrong_magic_rejected(self, tmp_path):
        path = str(tmp_path / "notckpt")
        with open(path, "wb") as fh:
            fh.write(b"GROMACS\nwhatever\n")
        with pytest.raises(CheckpointError, match="magic"):
            load_checkpoint(path)
        assert MAGIC not in open(path, "rb").read()

    def test_missing_file(self, tmp_path):
        with pytest.raises(CheckpointError, match="cannot read"):
            load_checkpoint(str(tmp_path / "absent.ckpt"))

    def test_shape_mismatch_rejected(self):
        with pytest.raises(CheckpointError):
            MdCheckpoint(
                step=0,
                positions=np.zeros((3, 3)),
                velocities=np.zeros((4, 3)),
                box_lengths=(1.0, 1.0, 1.0),
                integrator_state={},
            )


class TestCaptureRestore:
    def test_capture_restore_round_trip(self, water_small):
        system = water_small.copy()
        integ = LeapfrogIntegrator(
            IntegratorConfig(thermostat="vrescale"), seed=3
        )
        integ._rng.normal()  # advance the stream past its seed state
        ckpt = capture(system, integ, step=5)
        # Mutate, then restore: state must come back bit-identical.
        target = water_small.copy()
        target.positions += 1.0
        target.velocities *= 0.5
        integ2 = LeapfrogIntegrator(
            IntegratorConfig(thermostat="vrescale"), seed=99
        )
        restore(ckpt, target, integ2)
        assert np.array_equal(target.positions, system.positions)
        assert np.array_equal(target.velocities, system.velocities)
        # Restored RNG continues the captured stream exactly.
        assert integ2._rng.normal() == integ._rng.normal()

    def test_restore_rejects_particle_mismatch(self, water_small, lj_small):
        integ = LeapfrogIntegrator(IntegratorConfig())
        ckpt = capture(water_small, integ, step=0)
        with pytest.raises(CheckpointError, match="particles"):
            restore(ckpt, lj_small.copy(), integ)

    def test_capture_copies_state(self, water_small):
        system = water_small.copy()
        integ = LeapfrogIntegrator(IntegratorConfig())
        ckpt = capture(system, integ, step=0)
        system.positions += 5.0
        assert not np.array_equal(ckpt.positions, system.positions)

    def test_integrator_state_survives_disk(self, tmp_path, water_small):
        """RNG bit-generator state is JSON-serialisable through the file."""
        system = water_small.copy()
        integ = LeapfrogIntegrator(
            IntegratorConfig(thermostat="vrescale"), seed=11
        )
        integ._rng.chisquare(10)
        path = str(tmp_path / "s.ckpt")
        save_checkpoint(capture(system, integ, step=3), path)
        integ2 = LeapfrogIntegrator(IntegratorConfig(thermostat="vrescale"))
        restore(load_checkpoint(path), system, integ2)
        assert integ2._rng.normal() == integ._rng.normal()
        assert os.path.exists(path)
