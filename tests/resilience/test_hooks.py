"""Fault hooks in the hardware/parallel layers: DMA, athread, MPI, RDMA."""

import numpy as np
import pytest

from repro.hw.dma import DmaEngine, transfer_seconds
from repro.hw.params import DEFAULT_PARAMS
from repro.hw.perf import PerfCounters
from repro.parallel.athread import AthreadSpawnError, spawn
from repro.parallel.mpi_sim import SimComm, mpi_message_seconds
from repro.parallel.rdma import (
    rdma_message_seconds,
    rdma_message_seconds_with_faults,
)
from repro.resilience import (
    FaultPlan,
    FaultSpec,
    PermanentFaultError,
    RetryPolicy,
)


class TestDmaFaults:
    def test_no_plan_no_overhead(self):
        engine = DmaEngine()
        engine.get_bulk(512, 1000)
        assert engine.stats.n_retries == 0
        assert engine.stats.retry_seconds == 0.0

    def test_retries_charge_time_and_bytes(self):
        plan = FaultPlan(FaultSpec(seed=4, dma_error_rate=0.01))
        engine = DmaEngine(fault_plan=plan)
        clean = transfer_seconds(512) * 10_000
        total = engine.get_bulk(512, 10_000)
        assert engine.stats.n_retries > 0
        assert engine.stats.retry_seconds > 0.0
        assert total == pytest.approx(clean + engine.stats.retry_seconds)
        # Retried payload re-enters the curve at the original block size.
        assert engine.stats.bytes_retried == 512 * engine.stats.n_retries
        # ... and is extra traffic: effective bandwidth degrades.
        assert engine.stats.bytes_retried not in (0, engine.stats.bytes_total)
        faulty_bw = engine.effective_bandwidth_gbs()
        ref = DmaEngine()
        ref.get_bulk(512, 10_000)
        assert faulty_bw < ref.effective_bandwidth_gbs()

    def test_deterministic_overhead(self):
        def run():
            plan = FaultPlan(FaultSpec(seed=9, dma_error_rate=0.005))
            engine = DmaEngine(fault_plan=plan)
            engine.get_bulk(256, 5000)
            engine.put_bulk(64, 5000)
            return engine.stats.retry_seconds

        assert run() == run()

    def test_unrecoverable_raises(self):
        plan = FaultPlan(FaultSpec(seed=1, dma_error_rate=0.9))
        engine = DmaEngine(
            fault_plan=plan, retry=RetryPolicy(max_attempts=2)
        )
        with pytest.raises(PermanentFaultError):
            engine.get_bulk(512, 10_000)

    def test_perf_counters_surface_overhead(self):
        counters = PerfCounters()
        counters.dma.fault_plan = FaultPlan(
            FaultSpec(seed=2, dma_error_rate=0.02)
        )
        counters.dma.get_bulk(512, 5000)
        assert counters.fault_overhead_seconds > 0.0
        summary = counters.summary()
        assert summary["dma_retries"] > 0
        assert summary["fault_overhead_s"] == pytest.approx(
            counters.fault_overhead_seconds
        )


class TestAthreadFaults:
    def test_zero_survivors_raises_clear_error(self):
        plan = FaultPlan(
            FaultSpec(seed=0, dead_cpes=tuple(range(DEFAULT_PARAMS.n_cpes)))
        )
        with pytest.raises(AthreadSpawnError, match="zero surviving CPEs"):
            spawn(lambda cpe, lo, hi: hi - lo, 1000, fault_plan=plan)

    def test_survivors_cover_all_work(self):
        plan = FaultPlan(FaultSpec(seed=0, dead_cpes=(0, 7, 63)))
        report = spawn(lambda cpe, lo, hi: hi - lo, 1000, fault_plan=plan)
        assert report.n_survivors == DEFAULT_PARAMS.n_cpes - 3
        assert report.n_lost == 3
        assert 0 not in report.cpe_ids and 63 not in report.cpe_ids
        assert sum(report.results) == 1000  # no items dropped

    def test_healthy_spawn_unchanged(self):
        report = spawn(lambda cpe, lo, hi: hi - lo, 640)
        assert report.n_survivors == DEFAULT_PARAMS.n_cpes
        assert report.n_lost == 0


class TestMessageFaults:
    def test_send_content_survives_loss(self):
        plan = FaultPlan(FaultSpec(seed=6, msg_loss_rate=0.3))
        comm = SimComm(2, fault_plan=plan)
        payload = np.arange(64, dtype=np.float64)
        for tag in range(20):
            comm.send(0, 1, payload, tag=tag)
        for tag in range(20):
            assert np.array_equal(comm.recv(0, 1, tag=tag), payload)
        assert comm.stats.n_retries > 0
        assert comm.stats.retry_seconds > 0.0

    def test_lossless_comm_has_zero_retry_cost(self):
        comm = SimComm(2)
        comm.send(0, 1, np.zeros(8))
        assert comm.stats.n_retries == 0
        assert comm.stats.retry_seconds == 0.0

    def test_allreduce_charges_per_stage_losses(self):
        plan = FaultPlan(FaultSpec(seed=8, msg_loss_rate=0.4))
        comm = SimComm(8, fault_plan=plan)
        parts = [np.full(16, float(r)) for r in range(8)]
        total = comm.allreduce_sum(parts)
        assert np.array_equal(total, np.full(16, float(sum(range(8)))))
        assert comm.stats.n_retries > 0

    def test_rdma_resend_model(self):
        clean = rdma_message_seconds(4096)
        plan = FaultPlan(FaultSpec(seed=5, msg_loss_rate=0.5))
        faulty = rdma_message_seconds_with_faults(4096, plan)
        assert faulty >= clean
        no_loss = rdma_message_seconds_with_faults(
            4096, FaultPlan(FaultSpec(seed=5))
        )
        assert no_loss == pytest.approx(clean)


class TestMpiCopyBandwidthParam:
    """Satellite: the §3.6 copy bandwidth lives in ChipParams now."""

    def test_default_matches_paper_value(self):
        assert DEFAULT_PARAMS.mpi_copy_bandwidth_gbs == pytest.approx(24.0)

    def test_override_changes_message_cost(self):
        slow = DEFAULT_PARAMS.with_overrides(mpi_copy_bandwidth_gbs=6.0)
        assert mpi_message_seconds(1 << 20, slow) > mpi_message_seconds(
            1 << 20, DEFAULT_PARAMS
        )
