"""Degradation decisions and the narrowed-chip cost view."""

import pytest

from repro.hw.params import DEFAULT_PARAMS
from repro.resilience import (
    MODE_MPE_FALLBACK,
    MODE_NONE,
    MODE_REPARTITION,
    DegradationReport,
    degraded_chip,
    plan_degradation,
)


class TestPlanDegradation:
    def test_full_strength_is_none(self):
        report = plan_degradation(DEFAULT_PARAMS.n_cpes)
        assert report.mode == MODE_NONE
        assert not report.degraded
        assert report.slowdown == 1.0
        assert report.n_lost == 0

    def test_partial_loss_repartitions(self):
        report = plan_degradation(48)
        assert report.mode == MODE_REPARTITION
        assert report.degraded
        assert report.n_lost == 16
        assert report.slowdown == pytest.approx(64 / 48)

    def test_catastrophic_loss_falls_back_to_mpe(self):
        report = plan_degradation(4, min_cpes=8)
        assert report.mode == MODE_MPE_FALLBACK
        assert report.slowdown == float("inf")

    def test_min_cpes_is_the_threshold(self):
        assert plan_degradation(8, min_cpes=8).mode == MODE_REPARTITION
        assert plan_degradation(7, min_cpes=8).mode == MODE_MPE_FALLBACK

    def test_validation(self):
        with pytest.raises(ValueError):
            plan_degradation(-1)
        with pytest.raises(ValueError):
            plan_degradation(65)
        with pytest.raises(ValueError):
            plan_degradation(8, min_cpes=0)


class TestDegradedChip:
    def test_repartition_narrows_core_group(self):
        report = plan_degradation(40)
        chip = degraded_chip(DEFAULT_PARAMS, report)
        assert chip.n_cpes == 40
        assert DEFAULT_PARAMS.n_cpes == 64  # original untouched

    def test_other_modes_leave_chip_alone(self):
        for survivors in (DEFAULT_PARAMS.n_cpes, 2):
            report = plan_degradation(survivors)
            assert degraded_chip(DEFAULT_PARAMS, report) is DEFAULT_PARAMS


class TestReportValidation:
    def test_bad_mode_rejected(self):
        with pytest.raises(ValueError):
            DegradationReport(n_cpes=64, n_survivors=60, mode="limp")

    def test_survivor_bounds(self):
        with pytest.raises(ValueError):
            DegradationReport(n_cpes=64, n_survivors=65, mode=MODE_NONE)
