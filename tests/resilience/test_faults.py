"""Fault specs, the seeded fault oracle, and retry scheduling."""

import pytest

from repro.resilience import (
    NO_FAULTS,
    FaultPlan,
    FaultSpec,
    PermanentFaultError,
    RetryPolicy,
    parse_fault_spec,
    retry_rounds,
)


class TestFaultSpec:
    def test_defaults_are_inert(self):
        spec = FaultSpec()
        assert not spec.any_faults

    def test_any_faults_flags(self):
        assert FaultSpec(dma_error_rate=1e-3).any_faults
        assert FaultSpec(cpe_fail_rate=0.1).any_faults
        assert FaultSpec(msg_loss_rate=1e-4).any_faults
        assert FaultSpec(dead_cpes=(3,)).any_faults

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"dma_error_rate": -0.1},
            {"dma_error_rate": 1.0},
            {"cpe_fail_rate": 1.5},
            {"msg_loss_rate": -1e-9},
            {"dead_cpes": (-1,)},
        ],
    )
    def test_validation(self, kwargs):
        with pytest.raises(ValueError):
            FaultSpec(**kwargs)


class TestParseFaultSpec:
    def test_full_spec(self):
        spec = parse_fault_spec("seed=7,dma=1e-3,cpe=0.01,msg=1e-4,dead=3+17")
        assert spec.seed == 7
        assert spec.dma_error_rate == pytest.approx(1e-3)
        assert spec.cpe_fail_rate == pytest.approx(0.01)
        assert spec.msg_loss_rate == pytest.approx(1e-4)
        assert spec.dead_cpes == (3, 17)

    def test_partial_spec(self):
        spec = parse_fault_spec("dma=0.01")
        assert spec.seed == 0
        assert spec.dma_error_rate == pytest.approx(0.01)
        assert not spec.cpe_fail_rate

    def test_unknown_key_raises(self):
        with pytest.raises(ValueError, match="unknown fault spec key"):
            parse_fault_spec("dma=0.01,typo=3")

    def test_malformed_entry_raises(self):
        with pytest.raises(ValueError, match="malformed"):
            parse_fault_spec("dma")


class TestFaultPlan:
    def test_deterministic_across_instances(self):
        spec = FaultSpec(seed=42, dma_error_rate=0.05, cpe_fail_rate=0.03)
        a, b = FaultPlan(spec), FaultPlan(spec)
        seq_a = [a.dma_failures(1000) for _ in range(5)]
        seq_b = [b.dma_failures(1000) for _ in range(5)]
        assert seq_a == seq_b
        assert a.surviving_cpes(64) == b.surviving_cpes(64)

    def test_seed_changes_stream(self):
        draw = lambda s: FaultPlan(FaultSpec(seed=s, dma_error_rate=0.05)).dma_failures(10_000)  # noqa: E731
        assert draw(1) != draw(2)

    def test_zero_rate_never_fails(self):
        plan = FaultPlan(FaultSpec(seed=1))
        assert plan.dma_failures(10_000) == 0
        assert not plan.message_lost()
        assert plan.surviving_cpes(64) == list(range(64))
        assert plan.counts.total == 0

    def test_dead_cpes_start_dead_and_stay_dead(self):
        plan = FaultPlan(FaultSpec(seed=0, dead_cpes=(3, 17)))
        alive = plan.surviving_cpes(64)
        assert 3 not in alive and 17 not in alive
        assert len(alive) == 62
        assert plan.surviving_cpes(64) == alive  # no resurrection

    def test_cpe_loss_is_permanent_and_monotonic(self):
        plan = FaultPlan(FaultSpec(seed=5, cpe_fail_rate=0.05))
        survivors = [len(plan.surviving_cpes(64)) for _ in range(20)]
        assert survivors == sorted(survivors, reverse=True)
        assert plan.counts.cpe_losses == 64 - survivors[-1]

    def test_counts_accumulate(self):
        plan = FaultPlan(FaultSpec(seed=3, dma_error_rate=0.1))
        n = sum(plan.dma_failures(1000) for _ in range(10))
        assert plan.counts.dma_errors == n
        assert n > 0

    def test_no_faults_singleton_is_inert(self):
        assert NO_FAULTS.dma_failures(10_000) == 0
        assert NO_FAULTS.surviving_cpes(64) == list(range(64))


class TestRetry:
    def test_backoff_is_exponential(self):
        pol = RetryPolicy(backoff_base_cycles=100.0, backoff_factor=2.0)
        assert pol.backoff_cycles(1) == 100.0
        assert pol.backoff_cycles(3) == 400.0

    def test_policy_validation(self):
        with pytest.raises(ValueError):
            RetryPolicy(max_attempts=0)
        with pytest.raises(ValueError):
            RetryPolicy(backoff_factor=0.5)

    def test_no_failures_no_rounds(self):
        plan = FaultPlan(FaultSpec(seed=1))
        assert retry_rounds(plan, RetryPolicy(), 1000) == []

    def test_rounds_shrink_and_converge(self):
        plan = FaultPlan(FaultSpec(seed=9, dma_error_rate=0.1))
        rounds = retry_rounds(plan, RetryPolicy(max_attempts=50), 10_000)
        assert rounds, "10% of 10k transactions should fail at least once"
        sizes = [r.n_transactions for r in rounds]
        assert sizes == sorted(sizes, reverse=True)
        assert [r.attempt for r in rounds] == list(range(1, len(rounds) + 1))

    def test_permanent_fault_raises_with_context(self):
        plan = FaultPlan(FaultSpec(seed=2, dma_error_rate=0.9))
        with pytest.raises(PermanentFaultError, match="halo message"):
            retry_rounds(
                plan, RetryPolicy(max_attempts=2), 10_000, what="halo message"
            )
