"""End-to-end resilience: the repo's core invariant under failure.

Forces/trajectories must stay bit-identical to the fault-free reference
under every injected-fault schedule, and a run interrupted + restarted
from checkpoint must be bit-identical to an uninterrupted one.  Faults
are only allowed to show up in modelled time, counters, and the trace.
"""

import numpy as np
import pytest

from repro.core.engine import (
    KERNEL_CHECKPOINT,
    KERNEL_FAULT_RETRY,
    EngineConfig,
    SWGromacsEngine,
)
from repro.md.mdloop import MdConfig, MdLoop
from repro.resilience import (
    CheckpointError,
    ResiliencePolicy,
    load_checkpoint,
)
from repro.trace import Tracer, fault_report

N_STEPS = 14  # crosses one nstlist=10 rebuild boundary


@pytest.fixture(scope="module")
def reference(water_small, nb_water_small):
    """Uninterrupted fault-free run: final positions/velocities."""
    engine = SWGromacsEngine(
        water_small.copy(), EngineConfig(nonbonded=nb_water_small)
    )
    result = engine.run(N_STEPS)
    return result


class TestFaultTransparency:
    def test_faulty_run_is_bit_identical(
        self, reference, water_small, nb_water_small
    ):
        policy = ResiliencePolicy(
            faults="seed=11,dma=1e-3,cpe=0.02,msg=1e-4,dead=5"
        )
        engine = SWGromacsEngine(
            water_small.copy(),
            EngineConfig(nonbonded=nb_water_small, resilience=policy),
        )
        result = engine.run(N_STEPS)
        assert np.array_equal(
            result.system.positions, reference.system.positions
        )
        assert np.array_equal(
            result.system.velocities, reference.system.velocities
        )
        # ... but the failures are visible in the books.
        assert result.fault_counts is not None
        assert result.fault_counts.dma_errors > 0
        assert result.timing.seconds[KERNEL_FAULT_RETRY] > 0.0
        assert result.degradation is not None
        assert result.degradation.n_survivors < result.degradation.n_cpes

    def test_fault_overhead_slows_the_model(
        self, reference, water_small, nb_water_small
    ):
        policy = ResiliencePolicy(faults="seed=3,dma=5e-3")
        engine = SWGromacsEngine(
            water_small.copy(),
            EngineConfig(nonbonded=nb_water_small, resilience=policy),
        )
        result = engine.run(N_STEPS)
        retry = result.timing.seconds[KERNEL_FAULT_RETRY]
        assert retry > 0.0
        assert result.timing.total() == pytest.approx(
            reference.timing.total() + retry
        )

    def test_retries_reach_the_trace(self, water_small, nb_water_small):
        policy = ResiliencePolicy(faults="seed=3,dma=5e-3")
        config = EngineConfig(nonbonded=nb_water_small, resilience=policy)
        tracer = Tracer(config.chip)
        engine = SWGromacsEngine(water_small.copy(), config, tracer=tracer)
        engine.run(N_STEPS)
        report = fault_report(tracer)
        assert report.n_events > 0
        assert report.n_retries > 0
        assert report.retried_bytes > 0
        assert 0.0 < report.overhead_fraction < 1.0

    def test_mpe_fallback_below_min_cpes(self, water_small, nb_water_small):
        dead = "+".join(str(c) for c in range(60))  # 4 survivors
        policy = ResiliencePolicy(faults=f"seed=1,dead={dead}", min_cpes=8)
        engine = SWGromacsEngine(
            water_small.copy(),
            EngineConfig(nonbonded=nb_water_small, resilience=policy),
        )
        result = engine.run(3)
        assert result.degradation.mode == "mpe_fallback"
        # The MPE reference kernel carries the step: far slower per step
        # than the CPE ladder, but the run completes.
        assert result.force_result.name == "ORI"

    def test_repartition_costs_more_than_healthy(
        self, reference, water_small, nb_water_small
    ):
        policy = ResiliencePolicy(faults="seed=1,dead=0+1+2+3+4+5+6+7")
        engine = SWGromacsEngine(
            water_small.copy(),
            EngineConfig(nonbonded=nb_water_small, resilience=policy),
        )
        result = engine.run(N_STEPS)
        assert result.degradation.mode == "repartition"
        assert result.degradation.n_survivors == 56
        assert (
            result.timing.seconds["Force"]
            > reference.timing.seconds["Force"]
        )


class TestEngineCheckpointRestart:
    def test_interrupted_restart_is_bit_identical(
        self, tmp_path, reference, water_small, nb_water_small
    ):
        path = str(tmp_path / "state.ckpt")
        policy = ResiliencePolicy(checkpoint_every=4, checkpoint_path=path)
        writer = SWGromacsEngine(
            water_small.copy(),
            EngineConfig(nonbonded=nb_water_small, resilience=policy),
        )
        # "Crash" at step 13: the last checkpoint on disk is step 12,
        # mid pair-list interval (rebuild was at step 10).
        partial = writer.run(13)
        assert partial.checkpoints_written == 3
        ckpt = load_checkpoint(path)
        assert ckpt.step == 12
        assert ckpt.pairlist_rebuild_step == 10

        resumed = SWGromacsEngine(
            water_small.copy(), EngineConfig(nonbonded=nb_water_small)
        )
        resumed.restore(ckpt)
        result = resumed.run(N_STEPS)
        assert np.array_equal(
            result.system.positions, reference.system.positions
        )
        assert np.array_equal(
            result.system.velocities, reference.system.velocities
        )

    def test_restart_on_rebuild_boundary(
        self, tmp_path, reference, water_small, nb_water_small
    ):
        path = str(tmp_path / "state.ckpt")
        policy = ResiliencePolicy(checkpoint_every=10, checkpoint_path=path)
        writer = SWGromacsEngine(
            water_small.copy(),
            EngineConfig(nonbonded=nb_water_small, resilience=policy),
        )
        writer.run(11)
        ckpt = load_checkpoint(path)
        assert ckpt.step == 10
        resumed = SWGromacsEngine(
            water_small.copy(), EngineConfig(nonbonded=nb_water_small)
        )
        resumed.restore(ckpt)
        result = resumed.run(N_STEPS)
        assert np.array_equal(
            result.system.positions, reference.system.positions
        )

    def test_checkpoint_cost_is_charged(
        self, tmp_path, water_small, nb_water_small
    ):
        path = str(tmp_path / "state.ckpt")
        policy = ResiliencePolicy(checkpoint_every=4, checkpoint_path=path)
        engine = SWGromacsEngine(
            water_small.copy(),
            EngineConfig(nonbonded=nb_water_small, resilience=policy),
        )
        result = engine.run(N_STEPS)
        assert result.checkpoints_written == 3
        assert result.timing.seconds[KERNEL_CHECKPOINT] > 0.0

    def test_restore_rejects_wrong_box(
        self, tmp_path, water_small, water_medium, nb_water_small
    ):
        path = str(tmp_path / "state.ckpt")
        policy = ResiliencePolicy(checkpoint_every=2, checkpoint_path=path)
        engine = SWGromacsEngine(
            water_small.copy(),
            EngineConfig(nonbonded=nb_water_small, resilience=policy),
        )
        engine.run(2)
        other = SWGromacsEngine(
            water_medium.copy(), EngineConfig(nonbonded=nb_water_small)
        )
        with pytest.raises(CheckpointError):
            other.restore(load_checkpoint(path))


class TestMdLoopCheckpointRestart:
    def test_reference_loop_restart_is_bit_identical(
        self, tmp_path, water_small, nb_water_small
    ):
        cfg = MdConfig(nonbonded=nb_water_small)
        baseline = MdLoop(water_small.copy(), cfg).run(N_STEPS)

        path = str(tmp_path / "md.ckpt")
        cfg_ckpt = MdConfig(
            nonbonded=nb_water_small,
            resilience=ResiliencePolicy(
                checkpoint_every=4, checkpoint_path=path
            ),
        )
        partial = MdLoop(water_small.copy(), cfg_ckpt).run(13)
        assert partial.checkpoints_written == 3

        resumed = MdLoop(water_small.copy(), MdConfig(nonbonded=nb_water_small))
        resumed.restore(load_checkpoint(path))
        result = resumed.run(N_STEPS)
        assert np.array_equal(
            result.system.positions, baseline.system.positions
        )
        assert np.array_equal(
            result.system.velocities, baseline.system.velocities
        )


class TestRestartInvariantAccounting:
    """A restarted run's result accounting must match the uninterrupted
    run: rebuild counts, reporter series, trajectory frames, checkpoint
    counts — not just the physics."""

    def _md_cfg(self, nb, **kw):
        return MdConfig(
            nonbonded=nb, report_interval=2, output_interval=3, **kw
        )

    def test_mdloop_accounting_parity(
        self, tmp_path, water_small, nb_water_small
    ):
        path = str(tmp_path / "md.ckpt")
        policy = ResiliencePolicy(checkpoint_every=4, checkpoint_path=path)
        baseline = MdLoop(
            water_small.copy(), self._md_cfg(nb_water_small, resilience=policy)
        ).run(N_STEPS)

        MdLoop(
            water_small.copy(), self._md_cfg(nb_water_small, resilience=policy)
        ).run(13)  # crash at 13; last checkpoint = step 12
        resumed = MdLoop(
            water_small.copy(), self._md_cfg(nb_water_small, resilience=policy)
        )
        resumed.restore(load_checkpoint(path))
        result = resumed.run(N_STEPS)

        # The _rebuild_from_checkpoint regeneration is recovery work, not
        # a new rebuild: counts must match the uninterrupted run exactly.
        assert result.n_pairlist_rebuilds == baseline.n_pairlist_rebuilds
        # Pre-restart reporter history is carried through the checkpoint
        # bit-exactly (JSON floats round-trip).
        assert [
            (f.step, f.potential, f.kinetic, f.temperature)
            for f in result.reporter.frames
        ] == [
            (f.step, f.potential, f.kinetic, f.temperature)
            for f in baseline.reporter.frames
        ]
        assert len(result.trajectory_frames) == len(
            baseline.trajectory_frames
        )
        for a, b in zip(result.trajectory_frames, baseline.trajectory_frames):
            assert np.array_equal(a, b)
        assert result.checkpoints_written == baseline.checkpoints_written

    def test_mdloop_checkpoint_count_resets_between_runs(
        self, tmp_path, water_small, nb_water_small
    ):
        path = str(tmp_path / "md.ckpt")
        policy = ResiliencePolicy(checkpoint_every=4, checkpoint_path=path)
        loop = MdLoop(
            water_small.copy(), self._md_cfg(nb_water_small, resilience=policy)
        )
        first = loop.run(N_STEPS)
        second = loop.run(N_STEPS)
        # A second run() no longer inherits the first run's count.
        assert first.checkpoints_written == second.checkpoints_written == 3

    def test_engine_accounting_parity(
        self, tmp_path, water_small, nb_water_small
    ):
        path = str(tmp_path / "eng.ckpt")
        policy = ResiliencePolicy(checkpoint_every=4, checkpoint_path=path)

        def cfg():
            return EngineConfig(
                nonbonded=nb_water_small, report_interval=2, resilience=policy
            )

        baseline = SWGromacsEngine(water_small.copy(), cfg()).run(N_STEPS)
        SWGromacsEngine(water_small.copy(), cfg()).run(13)
        resumed = SWGromacsEngine(water_small.copy(), cfg())
        resumed.restore(load_checkpoint(path))
        result = resumed.run(N_STEPS)

        assert [
            (f.step, f.potential, f.kinetic, f.temperature)
            for f in result.reporter.frames
        ] == [
            (f.step, f.potential, f.kinetic, f.temperature)
            for f in baseline.reporter.frames
        ]
        assert result.checkpoints_written == baseline.checkpoints_written
