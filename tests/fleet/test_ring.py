"""Consistent-hash ring invariants (DESIGN.md §11).

The property the fleet leans on is *placement determinism*: where a key
lands depends only on the member set and the key — never on insertion
order, ring history, or process identity.  That is what makes a router
restart invisible (same workers => same routes => worker-side caches
stay warm) and what keeps duplicate fingerprints co-located so dedup
survives sharding.
"""

from __future__ import annotations

import pytest

from repro.fleet.ring import DEFAULT_VNODES, HashRing, stable_key

KEYS = [stable_key(("water", n, 0.45, seed)) for n in range(100, 1100, 10)
        for seed in (7, 2019)]


def ring_of(names, vnodes: int = 16) -> HashRing:
    ring = HashRing(vnodes=vnodes)
    for name in names:
        ring.add(name)
    return ring


class TestDeterminism:
    def test_placement_independent_of_insertion_order(self):
        a = ring_of(["w0", "w1", "w2"])
        b = ring_of(["w2", "w0", "w1"])
        assert [a.route(k) for k in KEYS] == [b.route(k) for k in KEYS]

    def test_placement_survives_rebuild(self):
        # A restarted router re-learns the same member names from worker
        # heartbeats; the rebuilt ring must route every key identically.
        before = ring_of(["alpha", "beta", "gamma"]).assignments(KEYS)
        after = ring_of(["alpha", "beta", "gamma"]).assignments(KEYS)
        assert before == after

    def test_same_system_key_same_owner(self):
        ring = ring_of(["w0", "w1", "w2"])
        key = ("water", 300, 0.45, 7)
        assert ring.route(key) == ring.route(("water", 300, 0.45, 7))

    def test_stable_key_canonical(self):
        assert stable_key("already-a-string") == "already-a-string"
        assert stable_key(("a", 1)) == stable_key(["a", 1])
        assert stable_key({"b": 2, "a": 1}) == stable_key({"a": 1, "b": 2})


class TestMembership:
    def test_add_remove_idempotent(self):
        ring = ring_of(["w0", "w1"])
        ring.add("w0")
        assert len(ring) == 2
        routes = [ring.route(k) for k in KEYS]
        ring.remove("w9")
        assert [ring.route(k) for k in KEYS] == routes
        ring.remove("w1")
        ring.remove("w1")
        assert ring.members == ["w0"]

    def test_contains_and_members_sorted(self):
        ring = ring_of(["b", "a", "c"])
        assert "a" in ring and "z" not in ring
        assert ring.members == ["a", "b", "c"]

    def test_empty_ring_raises(self):
        with pytest.raises(LookupError):
            HashRing().route("anything")

    def test_vnodes_validated(self):
        with pytest.raises(ValueError):
            HashRing(vnodes=0)


class TestRedistribution:
    def test_removal_moves_only_the_removed_members_keys(self):
        # The reason to use a ring at all: losing one worker must not
        # reshuffle keys between the survivors (that would cold-start
        # every surviving worker's caches).
        full = ring_of(["w0", "w1", "w2"], vnodes=DEFAULT_VNODES)
        owners = full.assignments(KEYS)
        full.remove("w1")
        for key, owner in full.assignments(KEYS).items():
            if owners[key] != "w1":
                assert owner == owners[key]
            else:
                assert owner in ("w0", "w2")

    def test_every_member_owns_a_share(self):
        ring = ring_of(["w0", "w1", "w2"], vnodes=DEFAULT_VNODES)
        counts = {name: 0 for name in ring.members}
        for key in KEYS:
            counts[ring.route(key)] += 1
        assert all(count > 0 for count in counts.values())
        # Virtual nodes keep the split loosely balanced — no member may
        # dominate the key space.
        assert max(counts.values()) < 0.7 * len(KEYS)
