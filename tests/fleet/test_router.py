"""In-process fleet semantics: routing, proxying, dedup, reassignment.

One event loop hosts the router *and* its workers (real
``SimulationService`` instances behind real Unix sockets), so every
cross-process guarantee is exercised over the actual wire protocol while
staying fast and deterministic.  Process-level failure (SIGKILL) lives
in ``test_failover.py``; here worker loss is simulated with registered
addresses nothing listens on.

Each test drives a fresh fleet on its own loop via ``asyncio.run`` (no
pytest-asyncio dependency).
"""

from __future__ import annotations

import asyncio

from repro.fleet.registry import STATE_DEAD
from repro.fleet.ring import stable_key
from repro.fleet.router import (
    REASON_NO_WORKERS,
    REASON_WORKER_LOST,
    FleetRouter,
    RouterConfig,
)
from repro.fleet.wire import Address, send_request
from repro.fleet.worker import FleetWorker, WorkerConfig
from repro.resilience.retry import RetryPolicy
from repro.serve.jobs import JobRequest, execute_request
from repro.serve.queue import REASON_DRAINING, REASON_INVALID
from repro.serve.service import ServeConfig
from repro.trace.events import CAT_FLEET, FLEET_TRACK, Tracer

FAST = dict(n_particles=300, r_cut=0.45)


def req(**kw) -> JobRequest:
    return JobRequest(**{**FAST, **kw})


def run(coro):
    return asyncio.run(coro)


class Fleet:
    """An in-process router plus N in-process workers over Unix sockets."""

    def __init__(self, tmp_path, n_workers: int = 2, **router_kw):
        self.tmp_path = tmp_path
        self.n_workers = n_workers
        self.router_kw = router_kw
        self.router_socket = str(tmp_path / "router.sock")
        self.router: FleetRouter | None = None
        self.workers: list[FleetWorker] = []

    async def __aenter__(self) -> "Fleet":
        self.router = FleetRouter(RouterConfig(**self.router_kw))
        await self.router.start()
        await self.router.serve_unix(self.router_socket)
        for i in range(self.n_workers):
            worker = FleetWorker(
                WorkerConfig(
                    name=f"w{i}",
                    router=Address(socket_path=self.router_socket),
                    address=Address(
                        socket_path=str(self.tmp_path / f"w{i}.sock")
                    ),
                    serve=ServeConfig(max_depth=32),
                    heartbeat_interval_s=0.2,
                )
            )
            await worker.start()
            self.workers.append(worker)
        return self

    async def __aexit__(self, *exc) -> None:
        await self.router.drain()
        for worker in self.workers:
            await worker.drain()

    async def request(self, payload: dict) -> dict:
        return await send_request(
            Address(socket_path=self.router_socket), payload
        )

    async def submit(self, request: JobRequest, wait: bool = True) -> dict:
        return await self.request(
            {"op": "submit", "job": request.to_dict(), "wait": wait}
        )


# ---------------------------------------------------------------------------
# Routing and proxying
# ---------------------------------------------------------------------------


class TestRouting:
    def test_routed_job_is_bit_identical_to_direct_call(self, tmp_path):
        request = req()
        direct = execute_request(request)

        async def scenario():
            async with Fleet(tmp_path) as fleet:
                return await fleet.submit(request)

        response = run(scenario())
        assert response["ok"]
        result = response["result"]
        assert result["ok"] and result["executed"]
        assert result["payload"] == direct
        assert result["job_id"] == 1  # router scope, not the worker's id

    def test_same_system_key_routes_to_same_worker(self, tmp_path):
        async def scenario():
            async with Fleet(tmp_path, n_workers=3) as fleet:
                for seed in range(20):
                    await fleet.submit(req(seed=seed))
                status = await fleet.request({"op": "fleet"})
                ring = fleet.router.ring
                return status, {
                    seed: ring.route(stable_key(req(seed=seed).system_key))
                    for seed in range(20)
                }

        status, expected = run(scenario())
        routed = sum(
            info["jobs_routed"] for info in status["workers"].values()
        )
        assert routed == 20
        # The router's observed placement matches the ring's promise.
        for seed, owner in expected.items():
            assert owner in status["workers"]

    def test_router_restart_routes_identically(self, tmp_path):
        # A restarted router that re-learns the same worker names (via
        # heartbeat-triggered re-registration) must route every key to
        # the same worker its predecessor did — placement is a pure
        # function of the member set.
        keys = [stable_key(req(seed=s).system_key) for s in range(40)]

        async def scenario():
            first = FleetRouter(RouterConfig())
            await first.start()
            second = FleetRouter(RouterConfig())
            await second.start()
            for name in ("w0", "w1", "w2"):
                first._register_worker(name, f"/nowhere/{name}.sock")
            for name in ("w2", "w1", "w0"):  # any re-learn order
                second._register_worker(name, f"/nowhere/{name}.sock")
            routes = (
                [first.ring.route(k) for k in keys],
                [second.ring.route(k) for k in keys],
            )
            await first.drain()
            await second.drain()
            return routes

        before, after = run(scenario())
        assert before == after

    def test_wait_op_and_result_caching(self, tmp_path):
        async def scenario():
            async with Fleet(tmp_path) as fleet:
                accepted = await fleet.submit(req(), wait=False)
                job_id = accepted["job_id"]
                first = await fleet.request({"op": "wait", "job_id": job_id})
                again = await fleet.request({"op": "wait", "job_id": job_id})
                missing = await fleet.request({"op": "wait", "job_id": 999})
                return first, again, missing

        first, again, missing = run(scenario())
        assert first["result"]["ok"]
        assert again["result"] == first["result"]
        assert not missing["ok"]
        assert missing["error"]["code"] == "unknown_job"

    def test_dedup_survives_sharding(self, tmp_path):
        # Identical requests land on one worker (same system key =>
        # same ring owner), where the existing batcher collapses them:
        # one execution, N results, bit-identical payloads.
        request = req()
        direct = execute_request(request)

        async def scenario():
            async with Fleet(tmp_path, n_workers=3) as fleet:
                await fleet.request({"op": "pause"})
                accepted = [
                    await fleet.submit(request, wait=False) for _ in range(4)
                ]
                # Let the router's forwards reach the paused workers'
                # queues before resuming (forwards run as tasks).
                await asyncio.sleep(0.3)
                await fleet.request({"op": "resume"})
                results = []
                for response in accepted:
                    answer = await fleet.request(
                        {"op": "wait", "job_id": response["job_id"]}
                    )
                    results.append(answer["result"])
                stats = await fleet.request({"op": "stats"})
                return results, stats

        results, stats = run(scenario())
        assert all(r["ok"] for r in results)
        assert all(r["payload"] == direct for r in results)
        assert sum(1 for r in results if r["executed"]) == 1
        totals = stats["stats"]["workers_total"]
        assert totals["executed_units"] == 1
        assert totals["dedup_hits"] == 3


# ---------------------------------------------------------------------------
# Rejections
# ---------------------------------------------------------------------------


class TestRejections:
    def test_no_workers_is_structured(self, tmp_path):
        async def scenario():
            router = FleetRouter(RouterConfig(route_wait_s=0.2))
            await router.start()
            path = str(tmp_path / "router.sock")
            await router.serve_unix(path)
            response = await send_request(
                Address(socket_path=path),
                {"op": "submit", "job": req().to_dict(), "wait": True},
            )
            await router.drain()
            return response

        response = run(scenario())
        assert not response["ok"] or not response["result"]["ok"]
        result = response["result"]
        assert result["error"]["code"] == REASON_NO_WORKERS

    def test_invalid_request_rejected_without_routing(self, tmp_path):
        async def scenario():
            async with Fleet(tmp_path, n_workers=1) as fleet:
                bad = await fleet.request(
                    {"op": "submit", "job": {"n_particles": -5}, "wait": True}
                )
                return bad, dict(fleet.router.stats.rejected_by_reason)

        bad, reasons = run(scenario())
        assert not bad["ok"]
        assert bad["error"]["code"] == REASON_INVALID
        assert reasons == {REASON_INVALID: 1}

    def test_draining_router_rejects_new_work(self, tmp_path):
        async def scenario():
            async with Fleet(tmp_path, n_workers=1) as fleet:
                fleet.router.draining = True
                response = await fleet.submit(req())
                fleet.router.draining = False
                return response

        response = run(scenario())
        assert not response["ok"]
        assert response["error"]["code"] == REASON_DRAINING

    def test_unknown_op_and_bad_json(self, tmp_path):
        async def scenario():
            async with Fleet(tmp_path, n_workers=1) as fleet:
                unknown = await fleet.request({"op": "frobnicate"})
                ping = await fleet.request({"op": "ping"})
                return unknown, ping

        unknown, ping = run(scenario())
        assert unknown["error"]["code"] == "unknown_op"
        assert ping["ok"] and ping["role"] == "router"


# ---------------------------------------------------------------------------
# Failure handling
# ---------------------------------------------------------------------------


class TestWorkerLoss:
    def test_job_reassigned_from_unreachable_worker(self, tmp_path):
        # A registered worker nothing listens on is indistinguishable
        # from a SIGKILLed one: the forward's round trip breaks, the
        # router declares it dead, pulls it off the ring, and reissues
        # the job to the key's new owner.
        async def scenario():
            tracer = Tracer()
            async with Fleet(tmp_path, n_workers=1) as fleet:
                fleet.router.tracer = tracer
                fleet.router._register_worker(
                    "ghost", str(tmp_path / "nobody-home.sock")
                )
                responses = []
                for seed in range(12):
                    responses.append(await fleet.submit(req(seed=seed)))
                info = fleet.router.registry.get("ghost")
                stats = fleet.router.stats
                return responses, info, stats, tracer

        responses, ghost, stats, tracer = run(scenario())
        assert all(r["result"]["ok"] for r in responses)
        assert ghost.state == STATE_DEAD
        assert stats.reassignments >= 1
        assert stats.workers_lost == 1
        assert stats.completed == 12
        reassigns = [
            e for e in tracer.select(CAT_FLEET, FLEET_TRACK)
            if e.name.startswith("reassign:")
        ]
        assert len(reassigns) == stats.reassignments

    def test_retries_exhausted_fails_structured(self, tmp_path):
        # Every worker is a black hole: the job must fail with the
        # wire-stable worker_lost code, not hang or crash the router.
        async def scenario():
            router = FleetRouter(
                RouterConfig(
                    route_wait_s=0.2,
                    retry=RetryPolicy(max_attempts=2, backoff_base_cycles=1),
                )
            )
            await router.start()
            path = str(tmp_path / "router.sock")
            await router.serve_unix(path)
            for name in ("g0", "g1", "g2"):
                router._register_worker(
                    name, str(tmp_path / f"{name}-nobody.sock")
                )
            response = await send_request(
                Address(socket_path=path),
                {"op": "submit", "job": req().to_dict(), "wait": True},
            )
            stats = router.stats
            await router.drain()
            return response, stats

        response, stats = run(scenario())
        result = response["result"]
        assert not result["ok"]
        assert result["error"]["code"] in (
            REASON_WORKER_LOST, REASON_NO_WORKERS,
        )
        assert stats.failed == 1

    def test_heartbeat_deadline_marks_worker_dead(self, tmp_path):
        # A registered worker that never heartbeats is reaped by the
        # monitor without any job traffic.
        async def scenario():
            router = FleetRouter(
                RouterConfig(heartbeat_timeout_s=0.3, check_interval_s=0.05)
            )
            await router.start()
            router._register_worker("mute", str(tmp_path / "mute.sock"))
            await asyncio.sleep(0.6)
            info = router.registry.get("mute")
            members = list(router.ring.members)
            await router.drain()
            return info, members

        info, members = run(scenario())
        assert info.state == STATE_DEAD
        assert members == []

    def test_drain_worker_op_removes_from_ring(self, tmp_path):
        async def scenario():
            async with Fleet(tmp_path, n_workers=2) as fleet:
                await fleet.submit(req())
                response = await fleet.request(
                    {"op": "drain_worker", "name": "w0"}
                )
                status = await fleet.request({"op": "fleet"})
                return response, status

        response, status = run(scenario())
        assert response["ok"]
        assert status["workers"]["w0"]["state"] in ("gone", "dead")
        assert status["ring"]["members"] == ["w1"]
        assert status["workers"]["w1"]["state"] == "up"
