"""Process-level fleet guarantees: SIGKILL a worker, lose nothing.

These tests spawn the real deployment shape — a ``repro fleet`` router
process plus N ``repro fleet-worker`` processes over Unix sockets
(:class:`~repro.fleet.launch.LocalFleet`) — and then do to it what the
design promises to survive:

* **kill -9 mid-load** — every job accepted by the router completes
  bit-identically to a direct in-process execution, including the jobs
  stranded on the killed worker (reassigned to the key's new owner; the
  purity of requests makes the re-run identical);
* **cross-client dedup through the router** — identical fingerprints
  from different client connections land on one worker and collapse to
  one execution, exactly as on a single unsharded service.

Placement is deterministic (BLAKE2b ring), so the seeds below are known
to spread across all three workers — killing ``w1`` is guaranteed to
strand jobs (seeds 2, 3, 6, 7 with the FAST request shape).
"""

from __future__ import annotations

from repro.fleet.launch import LocalFleet
from repro.fleet.ring import HashRing, stable_key
from repro.serve.jobs import JobRequest, execute_request

FAST = dict(n_particles=300, r_cut=0.45)


def req(**kw) -> JobRequest:
    return JobRequest(**{**FAST, **kw})


def fleet_args() -> dict:
    # Fast failure detection so the test is not dominated by the
    # (deliberately conservative) default heartbeat deadline.
    return dict(
        router_args=(
            "--heartbeat-timeout", "2.0",
            "--check-interval", "0.2",
            "--route-wait", "30",
        ),
        worker_args=("--heartbeat-interval", "0.25"),
    )


class TestKillNineMidLoad:
    def test_every_accepted_job_completes_bit_identically(self, tmp_path):
        seeds = list(range(12))
        requests = [req(seed=seed) for seed in seeds]
        direct = {seed: execute_request(r) for seed, r in zip(seeds, requests)}

        # Sanity: the worker we kill really owns part of the key space.
        ring = HashRing()
        for name in ("w0", "w1", "w2"):
            ring.add(name)
        doomed = [
            seed for seed, r in zip(seeds, requests)
            if ring.route(stable_key(r.system_key)) == "w1"
        ]
        assert doomed, "test workload must place keys on the doomed worker"

        with LocalFleet(3, root=tmp_path, **fleet_args()) as fleet:
            client = fleet.client(timeout=240.0)
            # Pause the whole fleet so every job is accepted (queued on
            # its owner) before the kill: the router's forwards are
            # in-flight round trips to w1 when it dies.
            client.pause()
            job_ids = {
                seed: client.submit(r, wait=False)
                for seed, r in zip(seeds, requests)
            }
            fleet.kill_worker("w1")
            client.resume()
            results = {seed: client.wait(jid) for seed, jid in job_ids.items()}
            stats = fleet.drain()

        assert all(r.ok for r in results.values()), fleet.logs()
        for seed, result in results.items():
            assert result.payload == direct[seed], f"seed {seed} diverged"
        assert stats["completed"] == len(seeds)
        assert stats["failed"] == 0
        assert stats["reassignments"] >= len(doomed)
        assert stats["workers_lost"] == 1


class TestDedupThroughRouter:
    def test_cross_client_duplicates_execute_once(self, tmp_path):
        seeds = list(range(6))
        requests = [req(seed=seed) for seed in seeds]
        direct = {seed: execute_request(r) for seed, r in zip(seeds, requests)}

        with LocalFleet(2, root=tmp_path, **fleet_args()) as fleet:
            alice = fleet.client(timeout=240.0)
            bob = fleet.client(timeout=240.0)
            alice.pause()
            ids = [
                (client, client.submit(r, wait=False))
                for r in requests
                for client in (alice, bob)
            ]
            alice.resume()
            results = [client.wait(jid) for client, jid in ids]
            stats = fleet.drain()

        assert all(r.ok for r in results), fleet.logs()
        # ids interleave (alice, bob) per seed: results[2i] and
        # results[2i+1] both answer requests[i].
        for i, seed in enumerate(seeds):
            assert results[2 * i].payload == direct[seed]
            assert results[2 * i + 1].payload == direct[seed]
        executed = sum(1 for r in results if r.executed)
        assert executed == len(seeds)  # one execution per distinct key
        totals = stats["workers_total"]
        assert totals["executed_units"] == len(seeds)
        assert totals["dedup_hits"] == len(seeds)
        assert stats["completed"] == 2 * len(seeds)
