"""Worker-registry lifecycle: UP / DRAINING / DEAD / GONE, incarnations.

Pure clock-parameterised unit tests — the registry never touches the
event loop, so every transition (including the heartbeat deadline) is
driven with explicit timestamps.
"""

from __future__ import annotations

import pytest

from repro.fleet.registry import (
    STATE_DEAD,
    STATE_DRAINING,
    STATE_GONE,
    STATE_UP,
    UnknownWorkerError,
    WorkerRegistry,
)


def registry(timeout: float = 5.0) -> WorkerRegistry:
    return WorkerRegistry(heartbeat_timeout_s=timeout)


class TestRegistration:
    def test_register_starts_up(self):
        reg = registry()
        info = reg.register("w0", "/tmp/w0.sock", now=10.0)
        assert info.state == STATE_UP
        assert info.incarnation == 1
        assert info.last_heartbeat == 10.0
        assert reg.routable() == ["w0"]
        assert "w0" in reg and len(reg) == 1

    def test_reregister_bumps_incarnation(self):
        reg = registry()
        reg.register("w0", "/tmp/w0.sock", now=0.0)
        reg.mark_dead("w0")
        info = reg.register("w0", "/tmp/w0-new.sock", now=5.0)
        assert info.incarnation == 2
        assert info.state == STATE_UP
        assert info.address == "/tmp/w0-new.sock"

    def test_unknown_worker_raises(self):
        with pytest.raises(UnknownWorkerError):
            registry().get("ghost")

    def test_timeout_validated(self):
        with pytest.raises(ValueError):
            WorkerRegistry(heartbeat_timeout_s=0.0)


class TestHeartbeats:
    def test_heartbeat_refreshes_deadline(self):
        reg = registry(timeout=5.0)
        reg.register("w0", "a", now=0.0)
        reg.heartbeat("w0", now=4.0)
        assert reg.expired(now=8.0) == []
        assert [i.name for i in reg.expired(now=9.5)] == ["w0"]

    def test_heartbeat_from_unknown_name_raises(self):
        # This is the router-restart recovery path: the worker sees the
        # structured unknown_worker answer and re-registers.
        with pytest.raises(UnknownWorkerError):
            registry().heartbeat("w0", now=1.0)

    def test_heartbeat_from_dead_worker_raises(self):
        # Its jobs were already reassigned — it must rejoin as a fresh
        # incarnation, not silently resume.
        reg = registry()
        reg.register("w0", "a", now=0.0)
        reg.mark_dead("w0")
        with pytest.raises(UnknownWorkerError):
            reg.heartbeat("w0", now=1.0)

    def test_expired_is_sorted_and_alive_only(self):
        reg = registry(timeout=1.0)
        for name in ("w2", "w0", "w1"):
            reg.register(name, name, now=0.0)
        reg.mark_dead("w1")
        assert [i.name for i in reg.expired(now=10.0)] == ["w0", "w2"]


class TestTransitions:
    def test_mark_dead(self):
        reg = registry()
        reg.register("w0", "a", now=0.0)
        assert reg.mark_dead("w0") is True
        assert reg.get("w0").state == STATE_DEAD
        assert reg.routable() == []
        assert reg.mark_dead("w0") is False  # already dead

    def test_mark_dead_guards_on_incarnation(self):
        # A stale failure observation (round trip to incarnation 1 broke
        # *after* the worker re-registered as incarnation 2) must not
        # kill the new process.
        reg = registry()
        reg.register("w0", "a", now=0.0)
        reg.mark_dead("w0")
        reg.register("w0", "a", now=1.0)
        assert reg.mark_dead("w0", incarnation=1) is False
        assert reg.get("w0").state == STATE_UP
        assert reg.mark_dead("w0", incarnation=2) is True

    def test_drain_leaves_routable_but_stays_alive(self):
        reg = registry()
        reg.register("w0", "a", now=0.0)
        info = reg.start_drain("w0")
        assert info.state == STATE_DRAINING
        assert reg.routable() == []
        assert reg.alive() == ["w0"]  # still heartbeat-monitored
        reg.decommission("w0")
        assert reg.get("w0").state == STATE_GONE
        assert reg.alive() == []

    def test_as_dict_is_sorted_and_wire_shaped(self):
        reg = registry()
        reg.register("w1", "b", now=0.0)
        reg.register("w0", "a", now=0.0)
        snapshot = reg.as_dict()
        assert list(snapshot) == ["w0", "w1"]
        assert snapshot["w0"] == {
            "name": "w0",
            "address": "a",
            "state": STATE_UP,
            "incarnation": 1,
            "jobs_routed": 0,
            "jobs_reassigned_away": 0,
        }
