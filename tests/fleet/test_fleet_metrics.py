"""Fleet-level SLO metrics: the router's ``metrics`` op and the
per-tenant merge across workers (counts sum, percentiles take the
worst worker, rates recompute)."""

from __future__ import annotations

import asyncio

import pytest

from repro.fleet.router import FleetRouter, RouterConfig, _merge_metrics
from repro.fleet.wire import Address, send_request
from repro.fleet.worker import FleetWorker, WorkerConfig
from repro.serve.jobs import JobRequest
from repro.serve.service import ServeConfig

FAST = dict(n_particles=300, r_cut=0.45)


def row(**kw) -> dict:
    base = {
        "submitted": 0, "completed": 0, "failed": 0, "rejected": 0,
        "rejected_by_reason": {}, "retried": 0, "journal_replays": 0,
        "store_hits": 0, "samples": 0, "queue_depth": 0,
        "p50_latency_s": 0.0, "p99_latency_s": 0.0,
        "p50_queue_s": 0.0, "p99_queue_s": 0.0,
        "oldest_age_seconds": 0.0,
    }
    base.update(kw)
    return base


class TestMergeMetrics:
    def test_counts_sum_percentiles_take_worst(self):
        merged = _merge_metrics(
            {
                "w0": {"a": row(submitted=3, completed=2,
                                p99_latency_s=0.5)},
                "w1": {"a": row(submitted=1, completed=1,
                                p99_latency_s=1.5)},
            }
        )
        assert merged["a"]["submitted"] == 4
        assert merged["a"]["completed"] == 3
        assert merged["a"]["p99_latency_s"] == 1.5

    def test_rates_recomputed_from_merged_counts(self):
        merged = _merge_metrics(
            {
                "w0": {"a": row(submitted=3,
                                rejected=1,
                                rejected_by_reason={"queue_full": 1})},
                "w1": {"a": row(submitted=4, retried=2)},
            }
        )
        assert merged["a"]["rejection_rate"] == pytest.approx(1 / 8)
        assert merged["a"]["retry_rate"] == pytest.approx(2 / 7)
        assert merged["a"]["rejected_by_reason"] == {"queue_full": 1}

    def test_dead_worker_rows_skipped(self):
        merged = _merge_metrics({"w0": {"a": row(submitted=1)}, "w1": None})
        assert merged["a"]["submitted"] == 1

    def test_disjoint_tenants_union(self):
        merged = _merge_metrics(
            {"w0": {"a": row(submitted=1)}, "w1": {"b": row(submitted=2)}}
        )
        assert set(merged) == {"a", "b"}


class TestWireMetricsOp:
    def test_router_metrics_aggregates_workers(self, tmp_path):
        async def main():
            router_socket = str(tmp_path / "router.sock")
            router = FleetRouter(RouterConfig(route_wait_s=15.0))
            await router.start()
            await router.serve_unix(router_socket)
            workers = []
            for i in range(2):
                worker = FleetWorker(
                    WorkerConfig(
                        name=f"w{i}",
                        router=Address(socket_path=router_socket),
                        address=Address(
                            socket_path=str(tmp_path / f"w{i}.sock")
                        ),
                        serve=ServeConfig(max_depth=16),
                        heartbeat_interval_s=0.2,
                    )
                )
                await worker.start()
                workers.append(worker)
            address = Address(socket_path=router_socket)
            for seed in range(4):
                response = await send_request(
                    address,
                    {
                        "op": "submit",
                        "job": JobRequest(**FAST, seed=seed,
                                          tenant="team").to_dict(),
                        "wait": True,
                    },
                )
                assert response["ok"]
            response = await send_request(address, {"op": "metrics"})
            await router.drain()
            for worker in workers:
                await worker.drain()
            return response

        response = asyncio.run(main())
        assert response["ok"]
        merged = response["metrics"]["team"]
        assert merged["submitted"] == 4
        assert merged["completed"] == 4
        # Per-worker breakdown rides alongside the merge.
        assert set(response["workers"]) == {"w0", "w1"}
        per_worker = sum(
            m["team"]["submitted"]
            for m in response["workers"].values()
            if m and "team" in m
        )
        assert per_worker == 4
