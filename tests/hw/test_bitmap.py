"""LineMarkBitmap: bit semantics, density, LDM footprint."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.hw.bitmap import LineMarkBitmap


class TestBitmapBasics:
    def test_starts_clear(self):
        bm = LineMarkBitmap(100)
        assert bm.count() == 0
        assert not any(bm.is_marked(i) for i in range(100))

    def test_mark_and_query(self):
        bm = LineMarkBitmap(100)
        bm.mark(0)
        bm.mark(63)
        bm.mark(64)  # crosses the word boundary
        bm.mark(99)
        for line in (0, 63, 64, 99):
            assert bm.is_marked(line)
        assert not bm.is_marked(1)
        assert bm.count() == 4

    def test_mark_idempotent(self):
        bm = LineMarkBitmap(10)
        bm.mark(5)
        bm.mark(5)
        assert bm.count() == 1

    def test_marked_lines_sorted(self):
        bm = LineMarkBitmap(200)
        for line in (199, 3, 77):
            bm.mark(line)
        np.testing.assert_array_equal(bm.marked_lines(), [3, 77, 199])

    def test_out_of_range(self):
        bm = LineMarkBitmap(10)
        with pytest.raises(IndexError):
            bm.mark(10)
        with pytest.raises(IndexError):
            bm.is_marked(-1)

    def test_rejects_empty(self):
        with pytest.raises(ValueError):
            LineMarkBitmap(0)

    def test_clear(self):
        bm = LineMarkBitmap(10)
        bm.mark(3)
        bm.clear()
        assert bm.count() == 0

    def test_density(self):
        bm = LineMarkBitmap(8)
        bm.mark(0)
        bm.mark(1)
        assert bm.density() == pytest.approx(0.25)

    def test_ldm_footprint_matches_paper_figure5(self):
        """Fig. 5: 1 byte of marks covers 8 lines = 256 particles, so the
        marks for 2048 particles (64 lines) fit in 8 bytes."""
        bm = LineMarkBitmap(64)
        assert bm.ldm_bytes == 8
        assert len(bm.to_bytes()) == 8


@settings(max_examples=50, deadline=None)
@given(
    lines=st.lists(st.integers(min_value=0, max_value=999), max_size=200),
    n=st.just(1000),
)
def test_bitmap_equals_set_semantics(lines, n):
    """The bitmap is exactly a set of line indices."""
    bm = LineMarkBitmap(n)
    for line in lines:
        bm.mark(line)
    expected = sorted(set(lines))
    np.testing.assert_array_equal(bm.marked_lines(), expected)
    assert bm.count() == len(expected)
    for probe in range(0, n, 37):
        assert bm.is_marked(probe) == (probe in set(lines))
