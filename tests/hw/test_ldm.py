"""LDM allocator: capacity enforcement, alignment, layout."""

import pytest

from repro.hw.ldm import ALIGNMENT_BYTES, LdmAllocator, LdmOverflowError


class TestLdmAllocator:
    def test_alignment_rounding(self):
        assert LdmAllocator.aligned(1) == ALIGNMENT_BYTES
        assert LdmAllocator.aligned(16) == 16
        assert LdmAllocator.aligned(17) == 32
        assert LdmAllocator.aligned(0) == 0

    def test_alloc_and_lookup(self):
        ldm = LdmAllocator(1024)
        blk = ldm.alloc("read_cache", 100)
        assert blk.offset == 0
        assert blk.size == 112  # rounded to 16
        assert ldm.block("read_cache") is blk
        assert ldm.used_bytes() == 112
        assert ldm.free_bytes() == 1024 - 112

    def test_sequential_offsets_aligned(self):
        ldm = LdmAllocator(4096)
        a = ldm.alloc("a", 33)
        b = ldm.alloc("b", 1)
        assert a.end == b.offset
        assert b.offset % ALIGNMENT_BYTES == 0

    def test_overflow_raises_with_context(self):
        ldm = LdmAllocator(64)
        ldm.alloc("a", 48)
        with pytest.raises(LdmOverflowError, match="LDM overflow"):
            ldm.alloc("b", 32)

    def test_duplicate_name_rejected(self):
        ldm = LdmAllocator(1024)
        ldm.alloc("x", 16)
        with pytest.raises(ValueError, match="already allocated"):
            ldm.alloc("x", 16)

    def test_unknown_name(self):
        with pytest.raises(KeyError):
            LdmAllocator(64).block("nope")

    def test_reset(self):
        ldm = LdmAllocator(1024)
        ldm.alloc("a", 100)
        ldm.reset()
        assert ldm.used_bytes() == 0
        ldm.alloc("a", 100)  # name reusable after reset

    def test_layout_order(self):
        ldm = LdmAllocator(1024)
        ldm.alloc("z", 16)
        ldm.alloc("a", 16)
        names = [b.name for b in ldm.layout()]
        assert names == ["z", "a"]

    def test_rejects_bad_sizes(self):
        with pytest.raises(ValueError):
            LdmAllocator(0)
        with pytest.raises(ValueError):
            LdmAllocator(64).alloc("a", -1)

    def test_paper_kernel_working_set_fits_64kb(self):
        """The MARK kernel's LDM plan (read cache + write cache + marks +
        staging) must fit the 64 KB budget — the constraint the paper
        designs around."""
        ldm = LdmAllocator(64 * 1024)
        ldm.alloc("read_cache", 32 * 8 * 112)  # 32 lines x 8 pkgs x 112 B
        ldm.alloc("write_cache", 32 * 8 * 48)  # force lines
        ldm.alloc("tags", 2 * 32 * 8)
        ldm.alloc("marks", 4096 // 8)  # marks for 4096 lines
        ldm.alloc("nblist_window", 2048)
        ldm.alloc("simd_staging", 1024)
        assert ldm.free_bytes() >= 0
