"""FloatV4 SIMD model: lane semantics, op counting, vshuff."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.hw.simd import FloatV4, OpCounter, vshuff

finite_f32 = st.floats(
    min_value=-1e6, max_value=1e6, allow_nan=False, width=32
)
lane_vals = st.lists(finite_f32, min_size=4, max_size=4)


class TestFloatV4:
    def test_requires_four_lanes(self):
        with pytest.raises(ValueError):
            FloatV4([1.0, 2.0, 3.0])

    def test_arithmetic_matches_numpy_float32(self):
        ops = OpCounter()
        a = FloatV4([1, 2, 3, 4], ops)
        b = FloatV4([5, 6, 7, 8], ops)
        np.testing.assert_array_equal((a + b).lanes, np.float32([6, 8, 10, 12]))
        np.testing.assert_array_equal((a - b).lanes, np.float32([-4, -4, -4, -4]))
        np.testing.assert_array_equal((a * b).lanes, np.float32([5, 12, 21, 32]))
        np.testing.assert_array_equal(
            (b / a).lanes, np.float32([5, 3, 7 / 3, 2])
        )
        assert ops.arith == 4

    def test_madd_single_op(self):
        ops = OpCounter()
        a = FloatV4([1, 2, 3, 4], ops)
        out = a.madd(FloatV4([2, 2, 2, 2]), FloatV4([1, 1, 1, 1]))
        np.testing.assert_array_equal(out.lanes, np.float32([3, 5, 7, 9]))
        assert ops.arith == 1

    def test_rsqrt(self):
        a = FloatV4([1.0, 4.0, 16.0, 64.0])
        np.testing.assert_allclose(
            a.rsqrt().lanes, [1.0, 0.5, 0.25, 0.125], rtol=1e-6
        )

    def test_splat_and_scalar_ops(self):
        s = FloatV4.splat(2.5)
        np.testing.assert_array_equal(s.lanes, np.float32([2.5] * 4))
        np.testing.assert_array_equal((s * 2.0).lanes, np.float32([5.0] * 4))

    def test_compare_select(self):
        a = FloatV4([1, 5, 3, 7])
        b = FloatV4([4, 4, 4, 4])
        mask = a.less_than(b)
        np.testing.assert_array_equal(mask, [True, False, True, False])
        sel = a.select(mask, b)
        np.testing.assert_array_equal(sel.lanes, np.float32([1, 4, 3, 4]))

    def test_hsum(self):
        assert FloatV4([1, 2, 3, 4]).hsum() == pytest.approx(10.0)

    def test_load_store_roundtrip(self):
        buf = np.zeros(8, dtype=np.float32)
        v = FloatV4([1, 2, 3, 4])
        v.store(buf, 4)
        out = FloatV4.load(buf, 4)
        np.testing.assert_array_equal(out.lanes, v.lanes)

    def test_load_out_of_range(self):
        with pytest.raises(IndexError):
            FloatV4.load(np.zeros(5, dtype=np.float32), 3)

    @settings(max_examples=50, deadline=None)
    @given(a=lane_vals, b=lane_vals)
    def test_float32_semantics_property(self, a, b):
        """Vector math == numpy float32 math, lane for lane."""
        va, vb = FloatV4(a), FloatV4(b)
        np.testing.assert_array_equal(
            (va * vb + va).lanes,
            np.float32(np.float32(a) * np.float32(b) + np.float32(a)),
        )


class TestVshuff:
    def test_basic_selection(self):
        a = FloatV4([10, 11, 12, 13])
        b = FloatV4([20, 21, 22, 23])
        out = vshuff(a, b, (0, 2), (1, 3))
        np.testing.assert_array_equal(out.lanes, np.float32([10, 12, 21, 23]))

    def test_counts_one_shuffle(self):
        ops = OpCounter()
        vshuff(FloatV4([0, 1, 2, 3]), FloatV4([4, 5, 6, 7]), (0, 1), (0, 1), ops)
        assert ops.shuffle == 1
        assert ops.total == 1

    def test_rejects_bad_selector(self):
        a, b = FloatV4([0, 1, 2, 3]), FloatV4([4, 5, 6, 7])
        with pytest.raises(ValueError):
            vshuff(a, b, (0, 4), (0, 1))
        with pytest.raises(ValueError):
            vshuff(a, b, (0,), (0, 1))

    @settings(max_examples=30, deadline=None)
    @given(
        a=lane_vals,
        b=lane_vals,
        sa=st.tuples(st.integers(0, 3), st.integers(0, 3)),
        sb=st.tuples(st.integers(0, 3), st.integers(0, 3)),
    )
    def test_shuffle_lane_semantics(self, a, b, sa, sb):
        out = vshuff(FloatV4(a), FloatV4(b), sa, sb)
        expect = np.float32([a[sa[0]], a[sa[1]], b[sb[0]], b[sb[1]]])
        np.testing.assert_array_equal(out.lanes, expect)


class TestOpCounter:
    def test_merge(self):
        a = OpCounter(arith=2, shuffle=1)
        b = OpCounter(arith=3, compare=4, load_store=5)
        a.merge(b)
        assert (a.arith, a.shuffle, a.compare, a.load_store) == (5, 1, 4, 5)
        assert a.total == 15
