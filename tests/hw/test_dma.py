"""DMA engine: Table 2 reproduction, interpolation, accounting."""

import numpy as np
import pytest

from repro.hw.dma import (
    DmaEngine,
    bandwidth_table,
    interpolate_bandwidth_gbs,
    transfer_seconds,
)
from repro.hw.params import DMA_BANDWIDTH_TABLE_GBS


class TestBandwidthCurve:
    @pytest.mark.parametrize("size,expected", sorted(DMA_BANDWIDTH_TABLE_GBS.items()))
    def test_anchor_points_exact(self, size, expected):
        assert interpolate_bandwidth_gbs(size) == pytest.approx(expected)

    def test_monotone_up_to_plateau(self):
        sizes = np.unique(np.geomspace(8, 2048, 60).astype(int))
        bws = [interpolate_bandwidth_gbs(int(s)) for s in sizes]
        assert all(b2 >= b1 - 1e-9 for b1, b2 in zip(bws, bws[1:]))

    def test_flat_beyond_last_anchor(self):
        assert interpolate_bandwidth_gbs(2048) == interpolate_bandwidth_gbs(1 << 20)

    def test_sub_anchor_scales_linearly(self):
        # A 4 B transfer takes as long as an 8 B one: half the bandwidth.
        assert interpolate_bandwidth_gbs(4) == pytest.approx(0.99 / 2)

    def test_interpolated_between_anchors(self):
        bw = interpolate_bandwidth_gbs(180)
        assert DMA_BANDWIDTH_TABLE_GBS[128] < bw < DMA_BANDWIDTH_TABLE_GBS[256]

    def test_rejects_non_positive(self):
        with pytest.raises(ValueError):
            interpolate_bandwidth_gbs(0)

    def test_table2_reproduced(self):
        rows = dict(bandwidth_table())
        for size, bw in DMA_BANDWIDTH_TABLE_GBS.items():
            assert rows[size] == pytest.approx(bw, rel=1e-6)


class TestTransferTime:
    def test_small_transfers_slower_per_byte(self):
        per_byte_small = transfer_seconds(8) / 8
        per_byte_large = transfer_seconds(2048) / 2048
        assert per_byte_small > 10 * per_byte_large

    def test_time_positive_and_monotone_in_size(self):
        t_prev = 0.0
        for size in (8, 64, 128, 512, 2048, 8192):
            t = transfer_seconds(size)
            assert t > t_prev
            t_prev = t


class TestDmaEngine:
    def test_accounting(self):
        eng = DmaEngine()
        t1 = eng.get(128)
        t2 = eng.put(256)
        assert eng.stats.n_get == 1 and eng.stats.n_put == 1
        assert eng.stats.bytes_total == 384
        assert eng.stats.seconds == pytest.approx(t1 + t2)

    def test_bulk_equals_loop(self):
        a, b = DmaEngine(), DmaEngine()
        a.get_bulk(112, 50)
        for _ in range(50):
            b.get(112)
        assert a.stats.seconds == pytest.approx(b.stats.seconds)
        assert a.stats.bytes_get == b.stats.bytes_get
        assert a.stats.n_get == b.stats.n_get

    def test_bulk_zero_count_noop(self):
        eng = DmaEngine()
        assert eng.get_bulk(128, 0) == 0.0
        assert eng.stats.n_transactions == 0

    def test_bulk_rejects_negative(self):
        with pytest.raises(ValueError):
            DmaEngine().get_bulk(128, -1)
        with pytest.raises(ValueError):
            DmaEngine().put_bulk(128, -1)

    def test_effective_bandwidth_matches_curve(self):
        eng = DmaEngine()
        eng.get_bulk(512, 1000)
        assert eng.effective_bandwidth_gbs() == pytest.approx(
            DMA_BANDWIDTH_TABLE_GBS[512], rel=1e-6
        )

    def test_reset(self):
        eng = DmaEngine()
        eng.get(128)
        eng.reset()
        assert eng.stats.n_transactions == 0
        assert eng.effective_bandwidth_gbs() == 0.0

    def test_stats_merge(self):
        a, b = DmaEngine(), DmaEngine()
        a.get(128)
        b.put(256)
        a.stats.merge(b.stats)
        assert a.stats.n_get == 1 and a.stats.n_put == 1
        assert a.stats.bytes_total == 384
