"""PerfCounters charging, pipeline model, and merge semantics."""

import pytest

from repro.hw.cpe import Cpe
from repro.hw.params import ChipParams
from repro.hw.perf import KernelTiming, PerfCounters


class TestChargeValidation:
    """Regression: negative counts used to be accepted silently, skewing
    the gld/gst stall model without any error."""

    def test_negative_gld_rejected(self):
        pc = PerfCounters()
        with pytest.raises(ValueError, match="non-negative"):
            pc.charge_gld(-1)
        assert pc.n_gld == 0

    def test_negative_gst_rejected(self):
        pc = PerfCounters()
        with pytest.raises(ValueError, match="non-negative"):
            pc.charge_gst(-3)
        assert pc.n_gst == 0

    def test_negative_cycles_rejected(self):
        pc = PerfCounters()
        with pytest.raises(ValueError, match="non-negative"):
            pc.charge_cpe_cycles(-1.0)
        with pytest.raises(ValueError, match="non-negative"):
            pc.charge_mpe_cycles(-1.0)

    def test_cpe_object_rejects_negative_counts_too(self):
        cpe = Cpe(0)
        with pytest.raises(ValueError, match="non-negative"):
            cpe.charge_gld(-1)
        with pytest.raises(ValueError, match="non-negative"):
            cpe.charge_gst(-1)

    def test_zero_count_is_a_noop(self):
        pc = PerfCounters()
        pc.charge_gld(0)
        pc.charge_gst(0)
        assert (pc.n_gld, pc.n_gst) == (0, 0)


class TestPipelineModel:
    def test_pipelined_hides_overlap_fraction(self):
        params = ChipParams()
        pc = PerfCounters(params=params)
        pc.charge_cpe_cycles(2 * params.clock_hz * 1e-6)  # 2 us compute
        pc.dma.stats.seconds += 1e-6  # 1 us DMA
        expected = 3e-6 - params.pipeline_overlap * 1e-6
        assert pc.elapsed_seconds() == pytest.approx(expected)

    def test_unpipelined_is_serial_sum(self):
        params = ChipParams()
        pc = PerfCounters(params=params, pipelined=False)
        pc.charge_cpe_cycles(2 * params.clock_hz * 1e-6)
        pc.dma.stats.seconds += 1e-6
        assert pc.elapsed_seconds() == pytest.approx(3e-6)


class TestMerge:
    """Regression: merge() used to ignore the other kernel's ``pipelined``
    flag, so folding a non-pipelined phase into a pipelined one let the
    serial phase's DMA hide behind compute."""

    def _counters(self, pipelined, compute_us=2.0, dma_us=1.0):
        params = ChipParams()
        pc = PerfCounters(params=params, pipelined=pipelined)
        pc.charge_cpe_cycles(compute_us * 1e-6 * params.clock_hz)
        pc.dma.stats.seconds += dma_us * 1e-6
        return pc

    def test_merge_is_conservative_about_pipelining(self):
        merged = self._counters(pipelined=True)
        merged.merge(self._counters(pipelined=False))
        assert merged.pipelined is False

    def test_merge_keeps_pipelined_when_both_are(self):
        merged = self._counters(pipelined=True)
        merged.merge(self._counters(pipelined=True))
        assert merged.pipelined is True

    def test_merged_elapsed_does_not_hide_serial_dma(self):
        a = self._counters(pipelined=True)
        b = self._counters(pipelined=False)
        serial_sum = a.elapsed_seconds() + b.elapsed_seconds()
        a.merge(b)
        # conservative: the merged estimate must not beat the per-phase sum
        assert a.elapsed_seconds() >= serial_sum - 1e-15

    def test_merge_sums_events(self):
        a = self._counters(pipelined=True)
        b = self._counters(pipelined=True)
        b.charge_gld(4)
        b.charge_gst(1)
        a.merge(b)
        assert a.n_gld == 4
        assert a.n_gst == 1
        assert a.cpe_compute_cycles == pytest.approx(
            2 * 2.0e-6 * a.params.clock_hz
        )
        assert a.dma_seconds == pytest.approx(2e-6)


class TestKernelTiming:
    def test_add_accumulates_and_rejects_negative(self):
        kt = KernelTiming()
        kt.add("Force", 1.0)
        kt.add("Force", 0.5)
        assert kt.seconds["Force"] == pytest.approx(1.5)
        with pytest.raises(ValueError, match="negative"):
            kt.add("Force", -0.1)

    def test_fractions(self):
        kt = KernelTiming()
        kt.add("Force", 3.0)
        kt.add("PME mesh", 1.0)
        fr = kt.fractions()
        assert fr["Force"] == pytest.approx(0.75)
        assert sum(fr.values()) == pytest.approx(1.0)

    def test_merge(self):
        a, b = KernelTiming(), KernelTiming()
        a.add("Force", 1.0)
        b.add("Force", 2.0)
        b.add("Update", 0.5)
        a.merge(b)
        assert a.seconds == {"Force": pytest.approx(3.0), "Update": pytest.approx(0.5)}
