"""Chip composition, CPE/MPE accounting, perf counters, NoC."""

import numpy as np
import pytest

from repro.hw.chip import CoreGroup, Sw26010Chip, chips_for_core_groups
from repro.hw.cpe import Cpe
from repro.hw.mpe import Mpe
from repro.hw.noc import MESSAGE_BYTES, RegisterMesh
from repro.hw.params import DEFAULT_PARAMS
from repro.hw.perf import KernelTiming, PerfCounters


class TestCpe:
    def test_cycle_accounting(self):
        cpe = Cpe(0)
        cpe.charge_scalar(100)
        cpe.simd_ops.arith += 10
        cpe.charge_gld(2)
        expected = 100 + 10 + 2 * DEFAULT_PARAMS.gld_latency_cycles
        assert cpe.total_cycles() == pytest.approx(expected)

    def test_reset(self):
        cpe = Cpe(1)
        cpe.charge_scalar(50)
        cpe.reset()
        assert cpe.total_cycles() == 0

    def test_rejects_negative(self):
        with pytest.raises(ValueError):
            Cpe(-1)
        with pytest.raises(ValueError):
            Cpe(0).charge_scalar(-1)


class TestMpe:
    def test_pair_charge(self):
        mpe = Mpe()
        mpe.charge_pairs_scalar(1000)
        assert mpe.cycles == 1000 * DEFAULT_PARAMS.mpe_scalar_pair_cycles
        assert mpe.seconds() == pytest.approx(mpe.cycles / 1.45e9)


class TestCoreGroup:
    def test_composition(self):
        cg = CoreGroup()
        assert len(cg.cpes) == 64
        assert cg.mpe is not None

    def test_critical_path_and_imbalance(self):
        cg = CoreGroup()
        for i, cpe in enumerate(cg.cpes):
            cpe.charge_scalar(100 + i)
        assert cg.critical_cpe_cycles() == 163
        assert cg.imbalance() == pytest.approx(163 / np.mean(np.arange(100, 164)))

    def test_elapsed_combines_cpe_and_mpe(self):
        cg = CoreGroup()
        cg.cpes[0].charge_scalar(1.45e9)  # one second of compute
        cg.mpe.charge(1.45e9 / 2)
        assert cg.elapsed_seconds() == pytest.approx(1.5)


class TestChip:
    def test_four_core_groups(self):
        chip = Sw26010Chip()
        assert chip.n_core_groups == 4
        assert chip.peak_gflops() == pytest.approx(4 * 765.0)

    @pytest.mark.parametrize("cgs,chips", [(1, 1), (4, 1), (5, 2), (512, 128)])
    def test_chips_for_core_groups(self, cgs, chips):
        assert chips_for_core_groups(cgs) == chips

    def test_rejects_zero_cgs(self):
        with pytest.raises(ValueError):
            chips_for_core_groups(0)


class TestPerfCounters:
    def test_pipelined_overlap(self):
        pc = PerfCounters(pipelined=True)
        pc.charge_cpe_cycles(1.45e9)  # 1 s compute
        pc.dma.get_bulk(2048, 10000)  # some DMA
        dma_s = pc.dma_seconds
        expected = 1.0 + dma_s - DEFAULT_PARAMS.pipeline_overlap * min(1.0, dma_s)
        assert pc.elapsed_seconds() == pytest.approx(expected)

    def test_unpipelined_additive(self):
        pc = PerfCounters(pipelined=False)
        pc.charge_cpe_cycles(1.45e9)
        pc.dma.get_bulk(2048, 1000)
        assert pc.elapsed_seconds() == pytest.approx(1.0 + pc.dma_seconds)

    def test_gld_never_hidden(self):
        pc = PerfCounters(pipelined=True)
        pc.charge_gld(1000)
        assert pc.elapsed_seconds() == pytest.approx(
            1000 * DEFAULT_PARAMS.gld_latency_cycles / 1.45e9
        )

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            PerfCounters().charge_cpe_cycles(-1)


class TestKernelTiming:
    def test_fractions_sum_to_one(self):
        t = KernelTiming()
        t.add("Force", 3.0)
        t.add("Update", 1.0)
        fr = t.fractions()
        assert sum(fr.values()) == pytest.approx(1.0)
        assert fr["Force"] == pytest.approx(0.75)

    def test_accumulates(self):
        t = KernelTiming()
        t.add("Force", 1.0)
        t.add("Force", 2.0)
        assert t.seconds["Force"] == 3.0

    def test_merge(self):
        a, b = KernelTiming(), KernelTiming()
        a.add("Force", 1.0)
        b.add("Force", 1.0)
        b.add("Update", 0.5)
        a.merge(b)
        assert a.total() == pytest.approx(2.5)

    def test_rejects_negative(self):
        with pytest.raises(ValueError):
            KernelTiming().add("x", -0.1)


class TestRegisterMesh:
    def test_row_column_connectivity(self):
        mesh = RegisterMesh()
        assert mesh.can_communicate(0, 7)  # same row
        assert mesh.can_communicate(0, 56)  # same column
        assert not mesh.can_communicate(0, 9)  # diagonal

    def test_send_receive_fifo(self):
        mesh = RegisterMesh()
        mesh.send(0, 1, np.float32([1, 2, 3, 4]))
        mesh.send(2, 1, np.float32([5, 6, 7, 8]))
        src, data = mesh.receive(1)
        assert src == 0
        np.testing.assert_array_equal(data, np.float32([1, 2, 3, 4]))

    def test_rejects_diagonal_and_self(self):
        mesh = RegisterMesh()
        with pytest.raises(ValueError):
            mesh.send(0, 9, np.float32([0]))
        with pytest.raises(ValueError):
            mesh.send(3, 3, np.float32([0]))

    def test_rejects_oversized(self):
        mesh = RegisterMesh()
        with pytest.raises(ValueError):
            mesh.send(0, 1, np.zeros(MESSAGE_BYTES // 4 + 1, dtype=np.float32))

    def test_empty_mailbox(self):
        with pytest.raises(LookupError):
            RegisterMesh().receive(5)

    def test_tree_reduce_time_scales(self):
        mesh = RegisterMesh()
        assert mesh.tree_reduce_time(1024) > mesh.tree_reduce_time(128) > 0
