"""Software caches: tag arithmetic, sequential vs vectorised equivalence,
two-way behaviour."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.hw.cache import (
    AddressMap,
    DirectMappedReadCache,
    TwoWaySetAssociativeCache,
    count_misses_direct_mapped,
    count_misses_two_way,
    simulate_trace,
)


class TestAddressMap:
    def test_decompose_compose_roundtrip(self):
        amap = AddressMap(5, 3)
        for idx in (0, 1, 7, 8, 255, 256, 123456, (1 << 30) + 12345):
            tag, line, off = amap.decompose(idx)
            assert amap.compose(tag, line, off) == idx

    def test_field_widths(self):
        amap = AddressMap(5, 3)
        assert amap.n_lines == 32
        assert amap.packages_per_line == 8
        tag, line, off = amap.decompose(0b110_10101_011)
        assert off == 0b011
        assert line == 0b10101
        assert tag == 0b110

    def test_line_address(self):
        amap = AddressMap(5, 3)
        assert amap.line_address(0) == 0
        assert amap.line_address(7) == 0
        assert amap.line_address(8) == 1

    def test_negative_index_rejected(self):
        with pytest.raises(ValueError):
            AddressMap().decompose(-1)


class TestDirectMapped:
    def test_cold_miss_then_hit(self):
        c = DirectMappedReadCache()
        assert c.access(5) is False
        assert c.access(5) is True
        assert c.access(6) is True  # same line (offset differs)
        assert c.stats.hits == 2 and c.stats.misses == 1

    def test_conflict_eviction(self):
        c = DirectMappedReadCache()
        stride = c.amap.n_lines * c.amap.packages_per_line
        assert c.access(0) is False
        assert c.access(stride) is False  # same set, different tag
        assert c.access(0) is False  # evicted
        assert c.stats.evictions == 2

    def test_reset(self):
        c = DirectMappedReadCache()
        c.access(3)
        c.reset()
        assert c.access(3) is False

    def test_access_line(self):
        c = DirectMappedReadCache()
        c.access_line(4)
        assert c.access(4 * c.amap.packages_per_line) is True


@settings(max_examples=60, deadline=None)
@given(
    trace=st.lists(st.integers(min_value=0, max_value=4095), min_size=0, max_size=400)
)
def test_vectorised_miss_count_matches_sequential(trace):
    """The np.diff trick must equal the exact cache on arbitrary traces."""
    arr = np.array(trace, dtype=np.int64)
    cache = DirectMappedReadCache()
    stats = simulate_trace(cache, arr)
    assert count_misses_direct_mapped(arr) == stats.misses


def test_vectorised_miss_count_empty():
    assert count_misses_direct_mapped(np.empty(0, dtype=np.int64)) == 0


def test_vectorised_rejects_negative():
    with pytest.raises(ValueError):
        count_misses_direct_mapped(np.array([-1]))


class TestTwoWay:
    def test_halved_sets(self):
        c = TwoWaySetAssociativeCache(AddressMap(5, 3))
        assert c.amap.n_lines == 16

    def test_two_tags_coexist(self):
        c = TwoWaySetAssociativeCache()
        stride = c.amap.n_lines * c.amap.packages_per_line
        c.access(0)
        c.access(stride)
        # Both resident: ping-pong now hits.
        assert c.access(0) is True
        assert c.access(stride) is True

    def test_lru_evicts_older(self):
        c = TwoWaySetAssociativeCache()
        stride = c.amap.n_lines * c.amap.packages_per_line
        c.access(0)          # way 0
        c.access(stride)     # way 1
        c.access(0)          # touch 0 -> victim is stride
        c.access(2 * stride) # evicts stride
        assert c.access(0) is True
        assert c.access(stride) is False

    def test_ping_pong_fixed_by_second_way(self):
        """The §3.5 thrashing scenario: >85 % direct, ~10 % two-way.

        Two sequential streams one cache apart: a direct map evicts on
        every access; the two-way cache keeps both streams resident and
        misses only at line boundaries.
        """
        amap = AddressMap(5, 3)
        stride = amap.n_lines * amap.packages_per_line
        base = np.arange(2000, dtype=np.int64) % stride
        trace = np.empty(4000, dtype=np.int64)
        trace[0::2] = base
        trace[1::2] = base + stride
        direct = count_misses_direct_mapped(trace, amap) / len(trace)
        two_way = TwoWaySetAssociativeCache(amap)
        simulate_trace(two_way, trace)
        assert direct > 0.85
        assert two_way.stats.miss_ratio < 0.15

    @settings(max_examples=30, deadline=None)
    @given(
        trace=st.lists(
            st.integers(min_value=0, max_value=2047), min_size=1, max_size=300
        )
    )
    def test_two_way_never_misses_more_plus_capacity(self, trace):
        """Sanity: a two-way cache's misses are bounded by trace length and
        at least the compulsory (unique-line) misses."""
        arr = np.array(trace, dtype=np.int64)
        c = TwoWaySetAssociativeCache()
        simulate_trace(c, arr)
        unique_lines = len(np.unique(arr >> c.amap.offset_bits))
        assert unique_lines <= c.stats.misses <= len(arr)


@settings(max_examples=60, deadline=None)
@given(
    trace=st.lists(st.integers(min_value=0, max_value=4095), min_size=0, max_size=400)
)
def test_two_way_vectorised_miss_count_matches_sequential(trace):
    """The run-collapse identity must equal the exact LRU cache on
    arbitrary traces (the promise in ``count_misses_two_way``'s docs)."""
    arr = np.array(trace, dtype=np.int64)
    cache = TwoWaySetAssociativeCache()
    stats = simulate_trace(cache, arr)
    assert count_misses_two_way(arr) == stats.misses


@settings(max_examples=30, deadline=None)
@given(
    trace=st.lists(st.integers(min_value=0, max_value=4095), min_size=0, max_size=300)
)
def test_two_way_vectorised_custom_geometry(trace):
    """Same agreement under a non-default base AddressMap."""
    amap = AddressMap(5, 3)
    arr = np.array(trace, dtype=np.int64)
    cache = TwoWaySetAssociativeCache(amap)
    stats = simulate_trace(cache, arr)
    assert count_misses_two_way(arr, amap) == stats.misses


def test_two_way_vectorised_empty():
    assert count_misses_two_way(np.empty(0, dtype=np.int64)) == 0


def test_two_way_vectorised_rejects_negative():
    with pytest.raises(ValueError):
        count_misses_two_way(np.array([-1]))
