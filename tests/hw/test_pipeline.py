"""Double-buffer pipeline model: schedule correctness and the overlap
factor's derivation."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.hw.pipeline import (
    effective_overlap,
    overlap_sweep,
    simulate_double_buffer,
)
from repro.hw.params import DEFAULT_PARAMS

times = st.lists(st.floats(0.0, 10.0, allow_nan=False), min_size=1, max_size=60)


class TestSchedule:
    def test_empty(self):
        s = simulate_double_buffer(np.array([]), np.array([]))
        assert s.total_seconds == 0.0

    def test_single_iteration_serial(self):
        s = simulate_double_buffer(np.array([2.0]), np.array([3.0]))
        assert s.total_seconds == 5.0
        assert s.stall_seconds == 2.0

    def test_perfect_overlap_compute_bound(self):
        """Equal long computes hide all but the first fetch."""
        f = np.full(10, 1.0)
        c = np.full(10, 5.0)
        s = simulate_double_buffer(f, c)
        assert s.total_seconds == pytest.approx(1.0 + 10 * 5.0)
        assert effective_overlap(s) == pytest.approx(0.9)

    def test_fetch_bound(self):
        """Long fetches: computes wait; total ~ sum(f) + last compute."""
        f = np.full(10, 5.0)
        c = np.full(10, 1.0)
        s = simulate_double_buffer(f, c)
        assert s.total_seconds == pytest.approx(10 * 5.0 + 1.0)

    def test_single_buffer_serialises(self):
        f = np.full(10, 1.0)
        c = np.full(10, 1.0)
        serial = simulate_double_buffer(f, c, n_buffers=1)
        double = simulate_double_buffer(f, c, n_buffers=2)
        assert serial.total_seconds > double.total_seconds
        # One buffer: fetch i waits for compute i-1 -> fully serial.
        assert serial.total_seconds == pytest.approx(20.0)

    def test_validation(self):
        with pytest.raises(ValueError):
            simulate_double_buffer(np.array([1.0]), np.array([1.0, 2.0]))
        with pytest.raises(ValueError):
            simulate_double_buffer(np.array([-1.0]), np.array([1.0]))
        with pytest.raises(ValueError):
            simulate_double_buffer(np.array([1.0]), np.array([1.0]), n_buffers=0)

    @settings(max_examples=50, deadline=None)
    @given(f=times, c=times)
    def test_schedule_bounds_property(self, f, c):
        """Total lies between the critical path and the serial sum."""
        n = min(len(f), len(c))
        fa, ca = np.array(f[:n]), np.array(c[:n])
        s = simulate_double_buffer(fa, ca)
        assert s.total_seconds <= s.serial_seconds + 1e-9
        assert s.total_seconds >= max(fa.sum(), ca.sum()) - 1e-9
        assert 0.0 <= effective_overlap(s) <= 1.0

    @settings(max_examples=30, deadline=None)
    @given(f=times, c=times, k=st.integers(2, 6))
    def test_more_buffers_never_slower(self, f, c, k):
        n = min(len(f), len(c))
        fa, ca = np.array(f[:n]), np.array(c[:n])
        fewer = simulate_double_buffer(fa, ca, n_buffers=k)
        more = simulate_double_buffer(fa, ca, n_buffers=k + 1)
        assert more.total_seconds <= fewer.total_seconds + 1e-9


class TestOverlapCalibration:
    def test_calibrated_constant_in_achievable_band(self):
        """The cost model's pipeline_overlap (0.85) must be achievable by
        the event-level model in the regime the MARK kernel runs in
        (compute ~ DMA, moderate variability)."""
        rows = overlap_sweep(np.linspace(0.5, 2.0, 7))
        overlaps = [o for _, o in rows]
        assert min(overlaps) < DEFAULT_PARAMS.pipeline_overlap < 1.0
        assert max(overlaps) > DEFAULT_PARAMS.pipeline_overlap - 0.1

    def test_overlap_rises_with_imbalance_of_phases(self):
        """Strongly compute-bound loops hide nearly all fetch time."""
        rows = dict(overlap_sweep(np.array([0.2, 5.0])))
        assert rows[5.0] > rows[0.2]
