"""End-to-end integration tests across subsystems.

Each test exercises a realistic multi-module path: mdp-file-driven runs,
gro round trips through dynamics, the full engine with PME, and the CLI.
"""

import io

import numpy as np
import pytest

from repro.cli import main as cli_main
from repro.core.engine import EngineConfig, SWGromacsEngine
from repro.md.gromacs_files import (
    PAPER_TABLE3_MDP,
    mdp_to_configs,
    read_gro,
    system_from_gro,
    write_gro,
)
from repro.md.integrator import IntegratorConfig
from repro.md.mdloop import MdConfig, MdLoop
from repro.md.minimize import minimize
from repro.md.nonbonded import NonbondedParams
from repro.md.pme import PmeParams
from repro.md.water import build_water_system


class TestMdpDrivenRun:
    def test_paper_deck_drives_engine(self):
        """Parse the paper's Table 3 deck and run the simulated chip with
        it — scaled cutoffs for the small test box."""
        nb, integ, algorithm = mdp_to_configs(PAPER_TABLE3_MDP)
        # Scale the cutoffs to a test-sized box; keep everything else.
        nb_scaled = NonbondedParams(
            r_cut=0.8,
            r_list=0.9,
            nstlist=nb.nstlist,
            coulomb_mode="rf",  # RF stands in for PME short-range here
        )
        system = build_water_system(900, seed=42)
        minimize(system, MdConfig(nonbonded=nb_scaled), n_steps=40)
        system.thermalize(integ.target_temperature, np.random.default_rng(1))
        engine = SWGromacsEngine(
            system,
            EngineConfig(
                nonbonded=nb_scaled, integrator=integ, report_interval=5
            ),
        )
        result = engine.run(15)
        temps = [f.temperature for f in result.reporter.frames]
        assert all(np.isfinite(temps))
        assert result.timing.seconds["Force"] > 0


class TestGroRoundTripThroughDynamics:
    def test_checkpoint_restart_equivalence(self):
        """Write a .gro mid-run, restart from it, and verify the restarted
        system produces finite, constrained dynamics."""
        nb = NonbondedParams(r_cut=0.7, r_list=0.8, coulomb_mode="rf")
        cfg = MdConfig(
            nonbonded=nb,
            integrator=IntegratorConfig(dt=0.001, thermostat="berendsen"),
            report_interval=5,
        )
        system = build_water_system(450, seed=10)
        minimize(system, cfg, n_steps=40)
        system.thermalize(300.0, np.random.default_rng(2))
        MdLoop(system, cfg).run(10)

        buf = io.StringIO()
        write_gro(system, buf, title="checkpoint")
        buf.seek(0)
        restarted = system_from_gro(read_gro(buf))

        loop = MdLoop(restarted, cfg)
        result = loop.run(10)
        assert loop.shake.max_violation(restarted.positions, restarted.box) < 1e-4
        assert np.isfinite(result.reporter.total_energy()).all()


class TestFullPmeMd:
    def test_pme_md_runs_stably(self):
        """Full PME electrostatics inside the MD loop (the paper's actual
        coulombtype) for a short constrained water run."""
        nb = NonbondedParams(
            r_cut=0.7, r_list=0.8, coulomb_mode="ewald", ewald_beta=4.0
        )
        cfg = MdConfig(
            nonbonded=nb,
            integrator=IntegratorConfig(dt=0.001, thermostat="none"),
            use_pme=True,
            pme=PmeParams(order=4, grid_spacing=0.12, beta=4.0),
            report_interval=5,
        )
        system = build_water_system(450, seed=3)
        minimize(system, cfg, n_steps=40)
        system.thermalize(300.0, np.random.default_rng(4))
        result = MdLoop(system, cfg).run(20)
        e = result.reporter.total_energy()
        assert np.isfinite(e).all()
        # Conservation within a loose band over this short horizon.
        assert np.abs(e - e.mean()).max() < 0.1 * abs(e.mean())
        assert "PME mesh" in result.timing.seconds


class TestCli:
    def test_table2(self, capsys):
        assert cli_main(["table2"]) == 0
        out = capsys.readouterr().out
        assert "30.48" in out

    def test_ttf(self, capsys):
        assert cli_main(["ttf"]) == 0
        out = capsys.readouterr().out
        assert "150" in out or "151" in out

    def test_ladder_small(self, capsys):
        assert cli_main(["ladder", "-n", "1200"]) == 0
        out = capsys.readouterr().out
        assert "Mark" in out

    def test_run_small(self, capsys):
        assert (
            cli_main(["run", "-n", "450", "-s", "6", "--rcut", "0.7"]) == 0
        )
        out = capsys.readouterr().out
        assert "modelled chip time" in out

    def test_unknown_command_rejected(self):
        with pytest.raises(SystemExit):
            cli_main(["frobnicate"])
