"""Deferred-update write cache: functional correctness (no force lost),
counter identities, sequential-vs-vectorised equivalence."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.deferred import DeferredUpdateCache, analyze_write_trace
from repro.hw.params import DEFAULT_PARAMS

PPL = DEFAULT_PARAMS.particles_per_line  # 32


def make_cache(n_lines_global=16, use_mark=True):
    copy = np.zeros((n_lines_global * PPL, 3), dtype=np.float32)
    return DeferredUpdateCache(copy, use_mark=use_mark), copy


class TestFunctionalAccumulation:
    def test_single_particle_roundtrip(self):
        cache, copy = make_cache()
        cache.accumulate(5, [1.0, 2.0, 3.0])
        cache.accumulate(5, [1.0, 0.0, -1.0])
        cache.flush()
        np.testing.assert_allclose(copy[5], [2.0, 2.0, 2.0])
        assert np.count_nonzero(copy.sum(axis=1)) == 1

    def test_package_accumulate(self):
        cache, copy = make_cache()
        forces4 = np.arange(12, dtype=np.float32).reshape(4, 3)
        cache.accumulate_package(3, forces4)
        cache.flush()
        np.testing.assert_allclose(copy[12:16], forces4)

    def test_eviction_preserves_totals(self):
        """Conflicting lines ping-pong; the final copy holds exact sums."""
        cache, copy = make_cache(n_lines_global=128)
        n_sets = cache.amap.n_lines
        conflict_stride = n_sets * PPL  # same set, different tag
        rng = np.random.default_rng(0)
        expected = np.zeros_like(copy, dtype=np.float64)
        for _ in range(300):
            slot = int(rng.integers(0, 2)) * conflict_stride + int(
                rng.integers(0, PPL)
            )
            f = rng.normal(size=3)
            cache.accumulate(slot, f)
            expected[slot] += f
        cache.flush()
        np.testing.assert_allclose(copy, expected.astype(np.float32), atol=1e-4)

    @pytest.mark.parametrize("use_mark", [True, False])
    def test_random_traffic_totals(self, use_mark, rng):
        cache, copy = make_cache(n_lines_global=64, use_mark=use_mark)
        expected = np.zeros_like(copy, dtype=np.float64)
        slots = rng.integers(0, 64 * PPL, 1000)
        vals = rng.normal(size=(1000, 3))
        for slot, f in zip(slots, vals):
            cache.accumulate(int(slot), f)
            expected[slot] += f
        cache.flush()
        np.testing.assert_allclose(copy, expected, atol=1e-3)

    def test_flush_idempotent(self):
        cache, copy = make_cache()
        cache.accumulate(0, [1, 1, 1])
        cache.flush()
        snapshot = copy.copy()
        cache.flush()
        np.testing.assert_array_equal(copy, snapshot)

    def test_shape_validation(self):
        with pytest.raises(ValueError):
            DeferredUpdateCache(np.zeros((10, 2), dtype=np.float32))
        with pytest.raises(ValueError):
            DeferredUpdateCache(np.zeros((33, 3), dtype=np.float32))


class TestMarkSemantics:
    def test_first_touch_skips_fetch(self):
        cache, _ = make_cache(use_mark=True)
        cache.accumulate_package(0, np.ones((4, 3)))
        assert cache.stats.first_touches == 1
        assert cache.stats.gets == 0

    def test_refetch_after_eviction(self):
        cache, _ = make_cache(n_lines_global=128, use_mark=True)
        stride_pkgs = cache.amap.n_lines << 0  # packages: one per line set...
        n_sets = cache.amap.n_lines
        pkgs_per_line = cache.params.packages_per_line
        conflict = n_sets * pkgs_per_line  # package index one cache apart
        cache.accumulate_package(0, np.ones((4, 3)))
        cache.accumulate_package(conflict, np.ones((4, 3)))  # evicts line 0
        cache.accumulate_package(0, np.ones((4, 3)))  # marked -> fetch
        assert cache.stats.first_touches == 2
        assert cache.stats.gets == 1
        assert cache.stats.misses == 3

    def test_rma_mode_always_fetches(self):
        cache, _ = make_cache(use_mark=False)
        cache.accumulate_package(0, np.ones((4, 3)))
        assert cache.stats.gets == 1
        assert cache.stats.first_touches == 0

    def test_mark_bitmap_tracks_touched_lines(self):
        cache, _ = make_cache(n_lines_global=16, use_mark=True)
        cache.accumulate(0, [1, 0, 0])  # line 0
        cache.accumulate(PPL * 3 + 5, [1, 0, 0])  # line 3
        np.testing.assert_array_equal(cache.mark.marked_lines(), [0, 3])


@settings(max_examples=40, deadline=None)
@given(
    trace=st.lists(st.integers(0, 255), min_size=1, max_size=300),
    use_mark=st.booleans(),
)
def test_sequential_counters_match_vectorised(trace, use_mark):
    """analyze_write_trace's closed-form identities equal the real cache."""
    n_lines_global = 256 // DEFAULT_PARAMS.packages_per_line
    copy = np.zeros((256 * 4, 3), dtype=np.float32)
    cache = DeferredUpdateCache(copy, use_mark=use_mark)
    for pkg in trace:
        cache.accumulate_package(pkg, np.zeros((4, 3)))
    cache.flush()
    fast = analyze_write_trace(np.array(trace), use_mark=use_mark)
    assert cache.stats.misses == fast.misses
    assert cache.stats.puts == fast.puts
    assert cache.stats.gets == fast.gets
    assert cache.stats.first_touches == fast.first_touches
    assert cache.stats.accesses == fast.accesses


class TestAnalyzeWriteTrace:
    def test_empty_trace(self):
        stats = analyze_write_trace(np.empty(0, dtype=np.int64))
        assert stats.misses == 0 and stats.puts == 0

    def test_seconds_positive(self):
        stats = analyze_write_trace(np.arange(100))
        assert stats.seconds() > 0
        assert stats.bytes_moved == (stats.puts + stats.gets) * stats.line_bytes

    def test_mark_reduces_gets(self):
        trace = np.arange(1000) % 600  # revisits lines
        marked = analyze_write_trace(trace, use_mark=True)
        unmarked = analyze_write_trace(trace, use_mark=False)
        assert marked.gets < unmarked.gets
        assert marked.misses == unmarked.misses
        assert marked.puts == unmarked.puts
