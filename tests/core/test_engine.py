"""SWGromacsEngine: workflow timing, optimisation levels, dynamics."""

import pytest

from repro.core.engine import (
    EngineConfig,
    LEVEL_NAMES,
    SWGromacsEngine,
    run_optimization_ladder,
)
from repro.md.integrator import IntegratorConfig
from repro.md.nonbonded import NonbondedParams
from repro.md.water import build_water_system


@pytest.fixture(scope="module")
def nb():
    return NonbondedParams(r_cut=0.75, r_list=0.85, coulomb_mode="rf")


@pytest.fixture(scope="module")
def system():
    return build_water_system(900, seed=17)


class TestEngineConfig:
    def test_level_names(self):
        assert LEVEL_NAMES == ("Ori", "Cal", "List", "Other")
        assert EngineConfig(optimization_level=0).level_name == "Ori"

    def test_level_bounds(self):
        with pytest.raises(ValueError):
            EngineConfig(optimization_level=4)
        with pytest.raises(ValueError):
            EngineConfig(n_cgs=0)

    def test_transport_by_level(self):
        from repro.core.comm_opt import Transport

        assert EngineConfig(optimization_level=2).transport is Transport.MPI
        assert EngineConfig(optimization_level=3).transport is Transport.RDMA

    def test_force_spec_by_level(self):
        assert EngineConfig(optimization_level=0).force_spec.name == "ORI"
        assert EngineConfig(optimization_level=1).force_spec.name == "MARK"


class TestModelStep:
    def test_levels_monotone(self, system, nb):
        times = {}
        for level in range(4):
            engine = SWGromacsEngine(
                system.copy(),
                EngineConfig(nonbonded=nb, optimization_level=level,
                             output_interval=100),
            )
            times[level] = engine.model_step().total()
        assert times[0] > times[1] > times[2] > times[3]

    def test_table1_case1_shape(self, system, nb):
        """Level-0 single-CG fractions: Force dominates (paper: 95.5 %)."""
        engine = SWGromacsEngine(
            system.copy(), EngineConfig(nonbonded=nb, optimization_level=0)
        )
        fr = engine.model_step().fractions()
        assert fr["Force"] > 0.85
        assert 0.0 < fr["Neighbor search"] < 0.10

    def test_multi_cg_adds_comm(self, system, nb):
        single = SWGromacsEngine(
            system.copy(), EngineConfig(nonbonded=nb, n_cgs=1)
        ).model_step()
        multi = SWGromacsEngine(
            system.copy(), EngineConfig(nonbonded=nb, n_cgs=64)
        ).model_step()
        assert "Comm. energies" in multi.seconds
        assert "Wait + comm. F" in multi.seconds
        assert "Comm. energies" not in single.seconds

    def test_output_interval_adds_io(self, system, nb):
        with_io = SWGromacsEngine(
            system.copy(),
            EngineConfig(nonbonded=nb, output_interval=10),
        ).model_step()
        assert "Write traj" in with_io.seconds


class TestRun:
    def test_dynamics_and_timing(self, system, nb):
        engine = SWGromacsEngine(
            system.copy(),
            EngineConfig(
                nonbonded=nb,
                integrator=IntegratorConfig(
                    dt=0.001, thermostat="berendsen", target_temperature=300.0
                ),
                report_interval=5,
            ),
        )
        res = engine.run(12)
        assert res.n_steps == 12
        assert len(res.reporter.frames) == 3
        assert res.timing.seconds["Force"] > 0
        assert res.force_result is not None
        assert res.level == "Other"

    def test_speedup_over(self, system, nb):
        slow = SWGromacsEngine(
            system.copy(), EngineConfig(nonbonded=nb, optimization_level=0)
        ).run(3)
        fast = SWGromacsEngine(
            system.copy(), EngineConfig(nonbonded=nb, optimization_level=3)
        ).run(3)
        assert fast.speedup_over(slow) > 5.0

    def test_negative_steps(self, system, nb):
        engine = SWGromacsEngine(system.copy(), EngineConfig(nonbonded=nb))
        with pytest.raises(ValueError):
            engine.run(-1)


class TestOptimizationLadder:
    def test_fig10_case1_shape(self, nb):
        """Single-CG ladder: big jump at Cal, diminishing after."""
        ladder = run_optimization_ladder(
            lambda n: build_water_system(n, seed=23),
            900,
            n_cgs=1,
            nonbonded=nb,
            output_interval=100,
        )
        base = ladder["Ori"].total()
        speedups = {k: base / v.total() for k, v in ladder.items()}
        assert speedups["Cal"] > 8
        assert speedups["Cal"] < speedups["List"] < speedups["Other"]

    def test_fig10_case2_comm_matters(self, nb):
        """Multi-CG ladder: the Other level (RDMA) gains relatively more
        than in the single-CG case (paper: 30->32 vs 8->18)."""
        lad1 = run_optimization_ladder(
            lambda n: build_water_system(n, seed=23), 900, n_cgs=1,
            nonbonded=nb, output_interval=100,
        )
        lad2 = run_optimization_ladder(
            lambda n: build_water_system(n, seed=23), 900, n_cgs=512,
            nonbonded=nb, output_interval=100,
        )
        gain1 = lad1["List"].total() / lad1["Other"].total()
        gain2 = lad2["List"].total() / lad2["Other"].total()
        assert gain2 > gain1
