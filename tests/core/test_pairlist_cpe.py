"""§3.5: CPE-parallel pair-list generation and the cache-organisation study."""

import numpy as np
import pytest

from repro.core.pairlist_cpe import (
    adversarial_trace,
    cache_study,
    generate_parallel,
    search_kernel_seconds,
    search_trace,
)


class TestParallelGeneration:
    @pytest.mark.parametrize("n_cpes", [1, 8, 64])
    def test_reproduces_serial_csr(self, plist_water_small, n_cpes):
        gathered = generate_parallel(plist_water_small, n_cpes)
        np.testing.assert_array_equal(gathered.pair_ci, plist_water_small.pair_ci)
        np.testing.assert_array_equal(gathered.pair_cj, plist_water_small.pair_cj)
        np.testing.assert_array_equal(gathered.i_starts, plist_water_small.i_starts)

    def test_scratch_accounting(self, plist_water_small):
        gathered = generate_parallel(plist_water_small, 16)
        assert gathered.scratch_bytes_per_cpe.sum() == 8 * plist_water_small.n_cluster_pairs
        assert len(gathered.scratch_bytes_per_cpe) == 16


class TestCacheStudy:
    def test_adversarial_trace_reproduces_paper(self):
        """§3.5: direct-mapped >85 % misses; two-way ~an order less."""
        trace = adversarial_trace(20000)
        study = cache_study(trace)
        assert study.direct_miss_ratio > 0.85
        assert study.two_way_miss_ratio < 0.15
        assert study.two_way_miss_ratio < study.direct_miss_ratio / 5

    def test_search_trace_interleaves(self, plist_water_small):
        trace = search_trace(plist_water_small, expansion=1.0)
        assert len(trace) == 2 * plist_water_small.n_cluster_pairs
        np.testing.assert_array_equal(
            trace[0::2], plist_water_small.pair_ci.astype(np.int64)
        )

    def test_search_trace_two_way_never_worse(self, plist_water_small):
        study = cache_study(search_trace(plist_water_small))
        assert study.two_way_miss_ratio <= study.direct_miss_ratio + 0.02

    def test_expansion_validation(self, plist_water_small):
        with pytest.raises(ValueError):
            search_trace(plist_water_small, expansion=0.5)


class TestSearchKernelModel:
    def test_lower_miss_ratio_faster(self, plist_water_small):
        fast = search_kernel_seconds(plist_water_small, 0.05)
        slow = search_kernel_seconds(plist_water_small, 0.90)
        assert fast < slow

    def test_miss_ratio_validated(self, plist_water_small):
        with pytest.raises(ValueError):
            search_kernel_seconds(plist_water_small, 1.5)

    def test_two_way_fix_speeds_search(self, plist_water_small):
        """The §3.5 change (85 % -> 10 % misses) must translate into a
        several-fold modelled kernel speedup."""
        t_thrash = search_kernel_seconds(plist_water_small, 0.87)
        t_fixed = search_kernel_seconds(plist_water_small, 0.10)
        assert t_thrash / t_fixed > 2.0
