"""Fig. 7 shuffle transpose: lane exactness, six-op budget."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.shuffle import (
    add_transposed_to_forces,
    transpose_4x3,
    transpose_4x3_reference,
)
from repro.hw.simd import FloatV4, OpCounter

lane_vals = st.lists(
    st.floats(-1e5, 1e5, allow_nan=False, width=32), min_size=4, max_size=4
)


class TestTranspose:
    def test_matches_paper_figure(self):
        fx = FloatV4([1, 2, 3, 4])  # X1..X4
        fy = FloatV4([5, 6, 7, 8])  # Y1..Y4
        fz = FloatV4([9, 10, 11, 12])  # Z1..Z4
        o0, o1, o2 = transpose_4x3(fx, fy, fz)
        np.testing.assert_array_equal(o0.lanes, np.float32([1, 5, 9, 2]))
        np.testing.assert_array_equal(o1.lanes, np.float32([6, 10, 3, 7]))
        np.testing.assert_array_equal(o2.lanes, np.float32([11, 4, 8, 12]))

    def test_exactly_six_shuffles(self):
        ops = OpCounter()
        transpose_4x3(FloatV4([0] * 4), FloatV4([0] * 4), FloatV4([0] * 4), ops)
        assert ops.shuffle == 6
        assert ops.arith == 0

    @settings(max_examples=60, deadline=None)
    @given(fx=lane_vals, fy=lane_vals, fz=lane_vals)
    def test_equals_numpy_reference_property(self, fx, fy, fz):
        o0, o1, o2 = transpose_4x3(FloatV4(fx), FloatV4(fy), FloatV4(fz))
        got = np.concatenate([o0.lanes, o1.lanes, o2.lanes])
        expect = transpose_4x3_reference(
            np.float32(fx), np.float32(fy), np.float32(fz)
        )
        np.testing.assert_array_equal(got, expect)


class TestPostTreatment:
    def test_adds_into_aos_buffer(self):
        forces = np.zeros(24, dtype=np.float32)
        forces[:] = np.arange(24)
        before = forces.copy()
        fx, fy, fz = FloatV4([1] * 4), FloatV4([2] * 4), FloatV4([3] * 4)
        add_transposed_to_forces(forces, 2, fx, fy, fz)
        expect = before.copy()
        expect[6:18] += np.tile(np.float32([1, 2, 3]), 4)
        np.testing.assert_array_equal(forces, expect)
        # Untouched region intact.
        np.testing.assert_array_equal(forces[:6], before[:6])

    def test_bounds_checked(self):
        with pytest.raises(IndexError):
            add_transposed_to_forces(
                np.zeros(12, dtype=np.float32),
                1,
                FloatV4([0] * 4),
                FloatV4([0] * 4),
                FloatV4([0] * 4),
            )

    def test_counts_vector_ops(self):
        ops = OpCounter()
        forces = np.zeros(12, dtype=np.float32)
        add_transposed_to_forces(
            forces, 0, FloatV4([1] * 4, ops), FloatV4([2] * 4, ops), FloatV4([3] * 4, ops)
        )
        assert ops.shuffle == 6
        assert ops.load_store == 6  # 3 loads + 3 stores
        assert ops.arith == 3  # 3 vector adds
