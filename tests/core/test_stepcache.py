"""Step-compute reuse layer (DESIGN.md §8).

The headline invariant: forces/energies are bit-identical with reuse on
vs. off, at every level — kernel sweep, engine, reference loop.  Plus the
reuse accounting itself: one `compute_short_range` per (work list,
positions), topology entries memoised, invalidation on rebuild/restore.
"""

import numpy as np
import pytest

from repro.core.kernels import (
    ALL_SPECS,
    run_kernel,
    run_strategy_sweep,
)
from repro.core.stepcache import (
    NullStepCache,
    StepCache,
    position_fingerprint,
    write_trace_for_range,
)
from repro.core.strategies import STRATEGY_LADDER, run_ladder
from repro.hw.params import DEFAULT_PARAMS
from repro.md.forces import compute_short_range
from repro.md.nonbonded import NonbondedParams
from repro.md.pairlist import build_pair_list
from repro.md.water import build_water_system

LADDER = ["ORI", "PKG", "CACHE", "VEC", "MARK"]
WITH_BASELINES = LADDER + ["RMA", "RCA", "USTC"]


@pytest.fixture(scope="module")
def water(nb):
    return build_water_system(600, seed=21)


@pytest.fixture(scope="module")
def nb():
    return NonbondedParams(r_cut=0.75, r_list=0.85, coulomb_mode="rf")


@pytest.fixture(scope="module")
def plist(water, nb):
    return build_pair_list(water, nb.r_list)


class TestSweepEquivalence:
    def test_sweep_matches_individual_runs_bitwise(self, water, plist, nb):
        swept = run_strategy_sweep(water, plist, nb, WITH_BASELINES)
        for name in WITH_BASELINES:
            solo = run_kernel(water, plist, nb, ALL_SPECS[name])
            assert np.array_equal(swept[name].forces, solo.forces), name
            assert swept[name].energy == solo.energy, name
            assert swept[name].elapsed_seconds == solo.elapsed_seconds, name
            assert swept[name].breakdown == solo.breakdown, name
            assert swept[name].stats == solo.stats, name

    def test_sweep_accepts_spec_objects(self, water, plist, nb):
        by_name = run_strategy_sweep(water, plist, nb, ["MARK"])
        by_spec = run_strategy_sweep(water, plist, nb, [ALL_SPECS["MARK"]])
        assert by_name.keys() == by_spec.keys()
        assert np.array_equal(
            by_name["MARK"].forces, by_spec["MARK"].forces
        )

    def test_one_force_eval_per_work_list(self, water, plist, nb):
        """The acceptance criterion: a full ladder sweep evaluates
        `compute_short_range` once per list state — once for the half
        list, plus once for the RCA-mirrored full list."""
        cache = StepCache()
        run_strategy_sweep(water, plist, nb, LADDER, cache=cache)
        assert cache.stats.sr_evals == 1
        assert cache.stats.sr_hits == len(LADDER) - 1

        cache = StepCache()
        run_strategy_sweep(water, plist, nb, WITH_BASELINES, cache=cache)
        assert cache.stats.sr_evals == 2  # half list + RCA full list
        assert cache.stats.sr_hits == len(WITH_BASELINES) - 2

    def test_one_packing_per_layout(self, water, plist, nb):
        cache = StepCache()
        run_strategy_sweep(water, plist, nb, WITH_BASELINES, cache=cache)
        # AOS (non-simd rungs) + SOA (simd rungs) = 2 builds.
        assert cache.stats.packed_builds == 2
        assert cache.stats.packed_hits > 0

    def test_run_ladder_shares_one_eval(self, water, nb):
        res = run_ladder(water, STRATEGY_LADDER, nb)
        labels = [s.label for s in STRATEGY_LADDER]
        assert list(res.results.keys()) == labels
        # All rungs share the identical forces object state.
        ref = res.results["Ori"].forces
        for label in labels[1:]:
            assert np.array_equal(res.results[label].forces, ref)


class TestCacheSemantics:
    def test_position_change_is_a_miss(self, water, plist, nb):
        cache = StepCache()
        a = cache.short_range(water, plist, nb, dtype=np.float32)
        moved = water.copy()
        moved.positions = moved.positions + 1e-7
        b = cache.short_range(moved, plist, nb, dtype=np.float32)
        assert cache.stats.sr_evals == 2
        assert not np.array_equal(a.forces, b.forces)

    def test_hit_returns_shared_result(self, water, plist, nb):
        cache = StepCache()
        a = cache.short_range(water, plist, nb, dtype=np.float32)
        b = cache.short_range(water, plist, nb, dtype=np.float32)
        assert a is b
        assert cache.stats.sr_evals == 1 and cache.stats.sr_hits == 1

    def test_nb_params_in_key(self, water, plist, nb):
        cache = StepCache()
        cache.short_range(water, plist, nb, dtype=np.float32)
        other = NonbondedParams(r_cut=0.7, r_list=0.85, coulomb_mode="rf")
        cache.short_range(water, plist, other, dtype=np.float32)
        assert cache.stats.sr_evals == 2

    def test_latest_fingerprint_only(self, water, plist, nb):
        """A stepping run replaces entries, it doesn't accumulate them."""
        cache = StepCache()
        moved = water.copy()
        for k in range(4):
            moved.positions = moved.positions + 1e-7
            cache.short_range(moved, plist, nb, dtype=np.float32)
        assert cache.stats.sr_evals == 4
        assert len(cache._state) == 1

    def test_invalidate_clears_everything(self, water, plist, nb):
        cache = StepCache()
        cache.short_range(water, plist, nb, dtype=np.float32)
        cache.partitions(plist, DEFAULT_PARAMS.n_cpes)
        cache.invalidate()
        assert not cache._state and not cache._topo and not cache._plists
        assert cache.stats.invalidations == 1
        cache.short_range(water, plist, nb, dtype=np.float32)
        assert cache.stats.sr_evals == 2

    def test_topology_entries_memoised(self, plist):
        cache = StepCache()
        p1 = cache.partitions(plist, 64)
        p2 = cache.partitions(plist, 64)
        assert p1 is p2
        t1 = cache.write_trace(plist, 0, plist.n_clusters)
        t2 = cache.write_trace(plist, 0, plist.n_clusters)
        assert t1 is t2
        assert np.array_equal(
            t1, write_trace_for_range(plist, 0, plist.n_clusters)
        )

    def test_fingerprint_sensitivity(self):
        a = np.zeros((8, 3))
        b = a.copy()
        assert position_fingerprint(a) == position_fingerprint(b)
        b[7, 2] = np.nextafter(0.0, 1.0)  # smallest possible change
        assert position_fingerprint(a) != position_fingerprint(b)

    def test_null_cache_counts_evals(self, water, plist, nb):
        cache = NullStepCache()
        a = cache.short_range(water, plist, nb, dtype=np.float32)
        b = cache.short_range(water, plist, nb, dtype=np.float32)
        assert cache.stats.sr_evals == 2
        assert a is not b
        assert np.array_equal(a.forces, b.forces)


class TestGatherReuse:
    def test_reuse_on_off_bit_identical(self, water, plist, nb):
        on = compute_short_range(water, plist, nb, reuse_gathers=True)
        off = compute_short_range(water, plist, nb, reuse_gathers=False)
        assert np.array_equal(on.forces, off.forces)
        assert on.energy == off.energy
        assert on.virial == off.virial

    def test_cached_gathers_are_readonly(self, water, plist):
        q = plist.gather_cached(water.charges)
        with pytest.raises(ValueError):
            q[0] = 99.0

    def test_gather_cache_dies_with_list(self, water, nb):
        """Rebuilding the list naturally invalidates the gather memo."""
        pl1 = build_pair_list(water, nb.r_list)
        q1 = pl1.gather_cached(water.charges)
        pl2 = build_pair_list(water, nb.r_list)
        q2 = pl2.gather_cached(water.charges)
        assert q1 is not q2


class TestDriverBitIdentity:
    def test_engine_reuse_on_off(self, water):
        from repro.core.engine import EngineConfig, SWGromacsEngine
        from repro.md.integrator import IntegratorConfig

        nb = NonbondedParams(
            r_cut=0.75, r_list=0.85, coulomb_mode="rf", nstlist=5
        )
        results = {}
        for reuse in (True, False):
            cfg = EngineConfig(
                nonbonded=nb,
                integrator=IntegratorConfig(thermostat="berendsen"),
                step_reuse=reuse,
                report_interval=2,
            )
            eng = SWGromacsEngine(water.copy(), cfg)
            results[reuse] = eng.run(12)
        on, off = results[True], results[False]
        assert np.array_equal(on.system.positions, off.system.positions)
        assert np.array_equal(on.system.velocities, off.system.velocities)
        assert [f.total for f in on.reporter.frames] == [
            f.total for f in off.reporter.frames
        ]

    def test_mdloop_reuse_on_off(self, water):
        from repro.md.integrator import IntegratorConfig
        from repro.md.mdloop import MdConfig, MdLoop

        nb = NonbondedParams(
            r_cut=0.75, r_list=0.85, coulomb_mode="rf", nstlist=5
        )
        results = {}
        for reuse in (True, False):
            cfg = MdConfig(
                nonbonded=nb,
                integrator=IntegratorConfig(thermostat="berendsen"),
                step_reuse=reuse,
                report_interval=2,
            )
            results[reuse] = MdLoop(water.copy(), cfg).run(12)
        on, off = results[True], results[False]
        assert np.array_equal(on.system.positions, off.system.positions)
        assert np.array_equal(on.system.velocities, off.system.velocities)
        assert [f.total for f in on.reporter.frames] == [
            f.total for f in off.reporter.frames
        ]

    def test_engine_rebuild_invalidates(self, water):
        from repro.core.engine import EngineConfig, SWGromacsEngine

        nb = NonbondedParams(
            r_cut=0.75, r_list=0.85, coulomb_mode="rf", nstlist=4
        )
        eng = SWGromacsEngine(water.copy(), EngineConfig(nonbonded=nb))
        eng.run(9)  # rebuilds at steps 0, 4, 8
        assert eng.stepcache.stats.invalidations == 3
        # At each rebuild step the kernel model's evaluation is shared
        # with the step loop (one hit per rebuild).
        assert eng.stepcache.stats.sr_hits >= 3
