"""LDM layout planning: budget enforcement and the paper's design point."""

import pytest

from repro.core.kernels import ALL_SPECS
from repro.core.ldm_plan import max_line_length_that_fits, plan_kernel_ldm
from repro.hw.ldm import LdmOverflowError
from repro.hw.params import DEFAULT_PARAMS


class TestKernelPlans:
    @pytest.mark.parametrize("name", list(ALL_SPECS))
    def test_every_strategy_fits_default_geometry(self, name):
        plan = plan_kernel_ldm(ALL_SPECS[name], 48000)
        assert plan.used_bytes <= DEFAULT_PARAMS.ldm_bytes
        assert plan.free_bytes >= 0

    def test_mark_is_largest_cached_plan(self):
        mark = plan_kernel_ldm(ALL_SPECS["MARK"], 48000)
        cache = plan_kernel_ldm(ALL_SPECS["CACHE"], 48000)
        ori = plan_kernel_ldm(ALL_SPECS["ORI"], 48000)
        assert mark.used_bytes > cache.used_bytes > ori.used_bytes

    def test_mark_bitmap_footprint_scales_with_system(self):
        small = plan_kernel_ldm(ALL_SPECS["MARK"], 4800)
        large = plan_kernel_ldm(ALL_SPECS["MARK"], 480000)
        blk_small = small.allocator.block("mark_bitmap")
        blk_large = large.allocator.block("mark_bitmap")
        assert blk_large.size > blk_small.size
        # Fig. 5's selling point: 1 byte marks 256 particles.
        assert blk_large.size <= -(-480000 // 256) + 16

    def test_paper_line_length_is_the_maximum(self):
        """8 packages/line is exactly the largest power of two whose MARK
        working set still fits the 64 KB LDM — the paper's design point."""
        assert max_line_length_that_fits(ALL_SPECS["MARK"], 48000) == 8

    def test_overlong_lines_rejected(self):
        params = DEFAULT_PARAMS.with_overrides(
            offset_bits=5, packages_per_line=32
        )
        with pytest.raises(LdmOverflowError):
            plan_kernel_ldm(ALL_SPECS["MARK"], 48000, params)

    def test_describe_readable(self):
        text = plan_kernel_ldm(ALL_SPECS["MARK"], 48000).describe()
        assert "read_cache" in text and "mark_bitmap" in text

    def test_validation(self):
        with pytest.raises(ValueError):
            plan_kernel_ldm(ALL_SPECS["MARK"], 0)


class TestRunKernelLdmEnforcement:
    def test_run_kernel_rejects_oversized_geometry(self, water_small, nb_water_small):
        from repro.md.pairlist import build_pair_list
        from repro.core.kernels import ALL_SPECS, run_kernel

        plist = build_pair_list(water_small, nb_water_small.r_list)
        params = DEFAULT_PARAMS.with_overrides(
            offset_bits=5, packages_per_line=32
        )
        with pytest.raises(LdmOverflowError):
            run_kernel(
                water_small, plist, nb_water_small, ALL_SPECS["MARK"], params
            )
        # check_ldm=False measures the hypothetical anyway.
        res = run_kernel(
            water_small,
            plist,
            nb_water_small,
            ALL_SPECS["MARK"],
            params,
            check_ldm=False,
        )
        assert res.elapsed_seconds > 0
