"""Bit-Map reduction (Algorithm 4) and the RMA init/reduction cost model."""

import numpy as np
import pytest

from repro.core.reduction import init_cost, reduce_copies, reduction_cost
from repro.hw.bitmap import LineMarkBitmap

PPL = 32


def make_copies_and_marks(n_cpes=4, n_lines=8, touched=((0, 1), (2,), (1, 3), ())):
    rng = np.random.default_rng(5)
    copies, marks = [], []
    for c in range(n_cpes):
        copy = np.zeros((n_lines * PPL, 3))
        mark = LineMarkBitmap(n_lines)
        for line in touched[c]:
            copy[line * PPL : (line + 1) * PPL] = rng.normal(
                size=(PPL, 3)
            )
            mark.mark(line)
        copies.append(copy)
        marks.append(mark)
    return copies, marks


class TestReduceCopies:
    def test_unmarked_sums_everything(self):
        copies, _ = make_copies_and_marks()
        total = reduce_copies(copies)
        np.testing.assert_allclose(total, sum(copies))

    def test_marked_equals_unmarked(self):
        """Skipping unmarked (all-zero) lines loses nothing."""
        copies, marks = make_copies_and_marks()
        np.testing.assert_allclose(
            reduce_copies(copies, marks, PPL), reduce_copies(copies)
        )

    def test_bitmap_invariant_enforced(self):
        copies, marks = make_copies_and_marks()
        copies[3][5 * PPL] = 1.0  # non-zero but unmarked: a lost update
        with pytest.raises(AssertionError, match="Bit-Map invariant"):
            reduce_copies(copies, marks, PPL)

    def test_shape_mismatch_rejected(self):
        copies, marks = make_copies_and_marks()
        copies[1] = copies[1][: PPL * 4]
        with pytest.raises(ValueError):
            reduce_copies(copies)

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            reduce_copies([])

    def test_marks_count_mismatch(self):
        copies, marks = make_copies_and_marks()
        with pytest.raises(ValueError):
            reduce_copies(copies, marks[:2], PPL)


class TestCostModel:
    def test_init_cost_scales_with_copies(self):
        a = init_cost(64, 32 * 100)
        b = init_cost(32, 32 * 100)
        assert a.seconds == pytest.approx(2 * b.seconds)
        assert a.bytes_moved == 2 * b.bytes_moved

    def test_marked_reduction_cheaper_when_sparse(self):
        n_slots = 32 * 1000
        sparse = reduction_cost([10] * 64, n_slots, marked=True)
        dense = reduction_cost([0] * 64, n_slots, marked=False)
        assert sparse.seconds < dense.seconds / 5
        assert sparse.lines_fetched == 640

    def test_unmarked_cost_independent_of_marks(self):
        n_slots = 32 * 100
        a = reduction_cost([1] * 64, n_slots, marked=False)
        b = reduction_cost([99] * 64, n_slots, marked=False)
        assert a.seconds == b.seconds

    def test_paper_claim_reduction_small_vs_calc(self):
        """§4.3: with marks, reduction is ~1 % of calculation time.  Use
        the 12k-particle geometry: ~410 lines, ~50 touched per CPE."""
        n_slots = 13116
        red = reduction_cost([50] * 64, n_slots, marked=True)
        calc_seconds = 2.0e-3  # the MARK kernel's compute at this size
        assert red.seconds < 0.25 * calc_seconds
