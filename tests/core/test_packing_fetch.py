"""Particle packages (Figs. 2/6) and the read-cache fetch strategy (Fig. 3)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.fetch import (
    ReadCachedFetcher,
    analyze_read_trace,
    uncached_read_seconds,
)
from repro.core.packing import (
    Layout,
    PackedParticles,
    fine_grained_access_bytes,
    package_access_bytes,
)
from repro.hw.params import DEFAULT_PARAMS
from repro.md.pairlist import CLUSTER_SIZE


@pytest.fixture(scope="module")
def packed(request):
    from repro.md.pairlist import build_pair_list
    from repro.md.water import build_water_system

    system = build_water_system(450, seed=8)
    plist = build_pair_list(system, 0.8)
    return PackedParticles.from_pairlist(system, plist), system, plist


class TestPackedParticles:
    def test_slot_alignment(self, packed):
        pk, system, plist = packed
        assert pk.n_slots == plist.n_slots
        assert pk.n_slots % CLUSTER_SIZE == 0
        assert pk.positions.dtype == np.float32
        assert pk.charges.dtype == np.float32

    def test_fields_match_system(self, packed):
        pk, system, plist = packed
        slot = int(np.nonzero(plist.real)[0][10])
        orig = plist.perm[slot]
        np.testing.assert_allclose(
            pk.positions[slot],
            system.box.wrap(system.positions)[orig].astype(np.float32),
        )
        assert pk.charges[slot] == np.float32(system.charges[orig])
        assert pk.types[slot] == system.topology.type_ids[orig]

    def test_padding_mols_unique_negative(self, packed):
        pk, _, plist = packed
        pad_mols = pk.mols[~pk.real]
        assert np.all(pad_mols < 0)
        assert len(np.unique(pad_mols)) == len(pad_mols)

    def test_package_view(self, packed):
        pk, _, _ = packed
        view = pk.package_view(1)
        np.testing.assert_array_equal(view["positions"], pk.positions[4:8])
        with pytest.raises(IndexError):
            pk.package_view(pk.n_packages)

    def test_layout_conversion_and_soa_view(self, packed):
        pk, _, _ = packed
        soa = pk.to_layout(Layout.SOA)
        coords = soa.soa_coordinates()
        assert coords.shape == (pk.n_packages, 3, CLUSTER_SIZE)
        # SOA row = the x coordinates of the package's four particles.
        np.testing.assert_array_equal(coords[2, 0], pk.positions[8:12, 0])
        with pytest.raises(ValueError):
            pk.soa_coordinates()  # AOS layout refuses

    def test_byte_layout_matches_paper(self, packed):
        pk, _, _ = packed
        assert pk.package_bytes == DEFAULT_PARAMS.package_bytes  # ~108 B
        assert pk.data_line_bytes == 8 * DEFAULT_PARAMS.package_bytes
        assert pk.force_line_bytes == 8 * 4 * 12
        assert fine_grained_access_bytes() == 4
        assert package_access_bytes() > 25 * fine_grained_access_bytes()


class TestFetcher:
    def test_hit_returns_same_data(self, packed):
        pk, _, _ = packed
        fetcher = ReadCachedFetcher(pk)
        a = fetcher.fetch_package(3)
        b = fetcher.fetch_package(3)
        np.testing.assert_array_equal(a["positions"], b["positions"])
        stats = fetcher.stats()
        assert stats.accesses == 2 and stats.misses == 1

    def test_miss_charges_line_dma(self, packed):
        pk, _, _ = packed
        fetcher = ReadCachedFetcher(pk)
        fetcher.fetch_package(0)
        assert fetcher.bytes_fetched == pk.data_line_bytes
        assert fetcher.seconds > 0

    @settings(max_examples=30, deadline=None)
    @given(trace=st.lists(st.integers(0, 500), min_size=1, max_size=300))
    def test_fetcher_matches_trace_analysis(self, packed, trace):
        """Sequential fetcher == vectorised whole-trace analysis."""
        pk, _, _ = packed
        arr = np.array(trace) % pk.n_packages
        fetcher = ReadCachedFetcher(pk)
        for p in arr:
            fetcher.fetch_package(int(p))
        fast = analyze_read_trace(arr, pk)
        seq = fetcher.stats()
        assert seq.misses == fast.misses
        assert seq.bytes_fetched == fast.bytes_fetched
        assert seq.seconds == pytest.approx(fast.seconds)

    def test_uncached_read_model(self):
        assert uncached_read_seconds(0, 112) == 0.0
        assert uncached_read_seconds(10, 112) == pytest.approx(
            10 * uncached_read_seconds(1, 112)
        )
        with pytest.raises(ValueError):
            uncached_read_seconds(-1, 112)

    def test_aggregation_bandwidth_claim(self):
        """§3.1: packaging lifts effective bandwidth ~16x (0.99 -> 15.77)."""
        t_fine = uncached_read_seconds(28, 4)  # 28 floats fetched one by one
        t_pkg = uncached_read_seconds(1, 112)  # one package
        assert t_fine / t_pkg > 10.0
