"""Strategy kernels: functional fidelity against the reference engine,
fast-path vs sequential-fidelity equivalence, cost-model shape.

These are the load-bearing tests of the reproduction: every strategy must
produce the same physics, and the modelled ladder must have the paper's
ordering.
"""

import numpy as np
import pytest

from repro.core.deferred import analyze_write_trace
from repro.core.kernels import (
    ALL_SPECS,
    KernelSpec,
    _write_trace_for_range,
    partition_clusters,
    run_kernel,
    run_kernel_sequential,
)
from repro.core.strategies import (
    BASELINE_STRATEGIES,
    STRATEGY_LADDER,
    get_strategy,
    run_ladder,
    run_strategy,
    verify_forces_agree,
)
from repro.md.forces import compute_short_range
from repro.md.nonbonded import NonbondedParams
from repro.md.pairlist import build_pair_list


@pytest.fixture(scope="module")
def reference_forces(water_small_mod, nb_mod, plist_mod):
    return compute_short_range(water_small_mod, plist_mod, nb_mod).forces


@pytest.fixture(scope="module")
def water_small_mod():
    from repro.md.water import build_water_system

    return build_water_system(600, seed=21)


@pytest.fixture(scope="module")
def nb_mod():
    return NonbondedParams(r_cut=0.75, r_list=0.85, coulomb_mode="rf")


@pytest.fixture(scope="module")
def plist_mod(water_small_mod, nb_mod):
    return build_pair_list(water_small_mod, nb_mod.r_list)


class TestSpecValidation:
    def test_mark_requires_write_cache(self):
        with pytest.raises(ValueError):
            KernelSpec("bad", mark=True)

    def test_rca_excludes_write_cache(self):
        with pytest.raises(ValueError):
            KernelSpec("bad", full_list=True, write_cache=True, rma_copies=False)

    def test_ustc_excludes_copies(self):
        with pytest.raises(ValueError):
            KernelSpec("bad", mpe_collect=True, rma_copies=True)

    def test_pipelining_arrives_with_cache(self):
        assert not ALL_SPECS["PKG"].pipelined
        assert ALL_SPECS["CACHE"].pipelined


class TestPartition:
    def test_covers_all_clusters(self, plist_mod):
        parts = partition_clusters(plist_mod, 64)
        assert parts[0][0] == 0
        assert parts[-1][1] == plist_mod.n_clusters
        for (a, b), (c, d) in zip(parts, parts[1:]):
            assert b == c

    def test_balanced_by_pairs(self, plist_mod):
        parts = partition_clusters(plist_mod, 16)
        counts = [
            int(plist_mod.i_starts[hi] - plist_mod.i_starts[lo])
            for lo, hi in parts
        ]
        assert max(counts) <= 1.5 * np.mean(counts)

    def test_single_worker(self, plist_mod):
        assert partition_clusters(plist_mod, 1) == [(0, plist_mod.n_clusters)]

    def test_rejects_zero_workers(self, plist_mod):
        with pytest.raises(ValueError):
            partition_clusters(plist_mod, 0)


class TestWriteTraceConstruction:
    def test_interleaving(self, plist_mod):
        trace = _write_trace_for_range(plist_mod, 0, 2)
        js0 = plist_mod.pairs_of_cluster(0)
        js1 = plist_mod.pairs_of_cluster(1)
        expect = np.concatenate([js0, [0], js1, [1]])
        np.testing.assert_array_equal(trace, expect)

    def test_full_range_length(self, plist_mod):
        trace = _write_trace_for_range(plist_mod, 0, plist_mod.n_clusters)
        assert len(trace) == plist_mod.n_cluster_pairs + plist_mod.n_clusters


class TestFunctionalFidelity:
    @pytest.mark.parametrize("name", list(ALL_SPECS))
    def test_every_strategy_matches_reference(
        self, name, water_small_mod, nb_mod, plist_mod, reference_forces
    ):
        res = run_kernel(water_small_mod, plist_mod, nb_mod, ALL_SPECS[name])
        scale = np.abs(reference_forces).max()
        assert np.abs(res.forces - reference_forces).max() / scale < 2e-4

    def test_energies_agree_across_strategies(
        self, water_small_mod, nb_mod, plist_mod
    ):
        energies = [
            run_kernel(water_small_mod, plist_mod, nb_mod, ALL_SPECS[n]).energy
            for n in ("ORI", "MARK", "RCA", "USTC")
        ]
        assert max(energies) - min(energies) < 1e-3 * abs(np.mean(energies))

    def test_verify_forces_agree_raises_on_bad(self, reference_forces):
        from repro.core.kernels import KernelResult

        bad = KernelResult(
            "bad", reference_forces * 1.5, 0.0, 1.0
        )
        with pytest.raises(AssertionError):
            verify_forces_agree({"bad": bad}, reference_forces)


class TestSequentialFidelityPath:
    @pytest.mark.parametrize("name", ["CACHE", "VEC", "MARK", "RMA"])
    def test_sequential_equals_fast(self, name, water_small_mod, nb_mod, plist_mod):
        """The cluster-by-cluster walk through the real cache/bitmap/SIMD
        objects reproduces the vectorised kernel's forces and energy."""
        fast = run_kernel(water_small_mod, plist_mod, nb_mod, ALL_SPECS[name])
        seq = run_kernel_sequential(
            water_small_mod, plist_mod, nb_mod, ALL_SPECS[name], n_cpes=8
        )
        scale = np.abs(fast.forces).max()
        assert np.abs(seq.forces - fast.forces).max() / scale < 2e-5
        assert seq.energy == pytest.approx(fast.energy, rel=1e-4)

    @pytest.mark.parametrize("use_mark", [True, False])
    def test_sequential_cache_counters_match_trace_analysis(
        self, use_mark, water_small_mod, nb_mod, plist_mod
    ):
        """The fast path's closed-form write accounting equals the counters
        of the real caches driven by the same partition."""
        n_cpes = 8
        spec = ALL_SPECS["MARK"] if use_mark else ALL_SPECS["RMA"]
        seq = run_kernel_sequential(
            water_small_mod, plist_mod, nb_mod, spec, n_cpes=n_cpes
        )
        parts = partition_clusters(plist_mod, n_cpes)
        misses = puts = gets = first = 0
        for lo, hi in parts:
            trace = _write_trace_for_range(plist_mod, lo, hi)
            st = analyze_write_trace(trace, use_mark=use_mark)
            misses += st.misses
            puts += st.puts
            gets += st.gets
            first += st.first_touches
        assert seq.stats["write_misses"] == misses
        assert seq.stats["write_puts"] == puts
        assert seq.stats["write_gets"] == gets
        assert seq.stats["write_first_touches"] == first

    def test_simd_path_counts_shuffles(self, water_small_mod, nb_mod, plist_mod):
        seq = run_kernel_sequential(
            water_small_mod, plist_mod, nb_mod, ALL_SPECS["VEC"], n_cpes=8
        )
        # Six shuffles per cluster pair (the Fig. 7 transpose).
        assert seq.stats["simd_shuffles"] == 6 * plist_mod.n_cluster_pairs


class TestCostModelShape:
    def test_ladder_ordering(self, water_small_mod, nb_mod):
        lad = run_ladder(water_small_mod, STRATEGY_LADDER, nb_mod)
        s = lad.speedups
        assert s["Ori"] == pytest.approx(1.0)
        assert 1.0 < s["Pkg"] < s["Cache"] < s["Vec"] < s["Mark"]

    def test_baseline_ordering(self, water_small_mod, nb_mod):
        lad = run_ladder(
            water_small_mod,
            STRATEGY_LADDER + BASELINE_STRATEGIES,
            nb_mod,
        )
        s = lad.speedups
        # The paper's Fig. 9 ordering: USTC ~ RCA << RMA < MARK.
        assert s["USTC_GMX"] < s["RMA_GMX"]
        assert s["SW_LAMMPS"] < s["RMA_GMX"]
        assert s["RMA_GMX"] < s["MARK_GMX"]
        assert s["RMA_GMX"] == pytest.approx(s["Vec"])
        assert s["MARK_GMX"] == pytest.approx(s["Mark"])

    def test_mark_removes_init(self, water_small_mod, nb_mod, plist_mod):
        vec = run_kernel(water_small_mod, plist_mod, nb_mod, ALL_SPECS["VEC"])
        mark = run_kernel(water_small_mod, plist_mod, nb_mod, ALL_SPECS["MARK"])
        assert vec.breakdown["init"] > 0
        assert mark.breakdown["init"] == 0
        assert mark.breakdown["reduction"] < vec.breakdown["reduction"]

    def test_rca_doubles_compute(self, water_small_mod, nb_mod, plist_mod):
        rca = run_kernel(water_small_mod, plist_mod, nb_mod, ALL_SPECS["RCA"])
        cache = run_kernel(water_small_mod, plist_mod, nb_mod, ALL_SPECS["CACHE"])
        # Exactly 2x in total work; the critical-CPE time ratio is noisy
        # at this small cluster count (load imbalance), so allow slack.
        assert rca.stats["cluster_pairs"] == pytest.approx(
            2 * cache.stats["cluster_pairs"], rel=0.05
        )
        assert 1.4 < rca.breakdown["compute"] / cache.breakdown["compute"] < 2.6

    def test_cache_reduces_read_traffic(self, water_small_mod, nb_mod, plist_mod):
        pkg = run_kernel(water_small_mod, plist_mod, nb_mod, ALL_SPECS["PKG"])
        cache = run_kernel(water_small_mod, plist_mod, nb_mod, ALL_SPECS["CACHE"])
        assert cache.breakdown["read_dma"] < pkg.breakdown["read_dma"]
        assert cache.breakdown["write_dma"] < pkg.breakdown["write_dma"]
        assert cache.stats["read_miss_ratio"] < 0.5

    def test_miss_ratios_paper_range(self, water_small_mod, nb_mod, plist_mod):
        """Paper §4.2: both cache miss rates under 15 %."""
        mark = run_kernel(water_small_mod, plist_mod, nb_mod, ALL_SPECS["MARK"])
        assert mark.stats["read_miss_ratio"] < 0.20
        assert mark.stats["write_miss_ratio"] < 0.20

    def test_speedup_roughly_size_independent(self, nb_mod):
        """Fig. 8: the ladder is flat in particles per CG."""
        from repro.md.water import build_water_system

        speedups = []
        for n in (1200, 2400):
            system = build_water_system(n, seed=3)
            lad = run_ladder(system, STRATEGY_LADDER, nb_mod)
            speedups.append(lad.speedups["Mark"])
        assert speedups[1] == pytest.approx(speedups[0], rel=0.30)

    def test_run_strategy_by_label(self, water_small_mod, nb_mod):
        res = run_strategy(water_small_mod, "Mark", nb_mod)
        assert res.name == "MARK"
        with pytest.raises(KeyError):
            get_strategy("nonexistent")


class TestCostModelRegressions:
    """Satellite-bug pins: nblist DMA through Table 2 per CPE, per-
    partition i-line counts, and the two-sided speedup guard."""

    def test_nblist_charged_at_interpolated_bandwidth(
        self, water_small_mod, nb_mod, plist_mod
    ):
        """Each CPE's neighbour-list slice streams at the Table 2
        bandwidth for its own chunk size — hand-recomputed here with an
        independent log-log interpolation of the anchors."""
        from repro.hw.params import DEFAULT_PARAMS

        res = run_kernel(
            water_small_mod, plist_mod, nb_mod, ALL_SPECS["MARK"]
        )
        curve = DEFAULT_PARAMS.dma_curve
        sizes = np.array([s for s, _ in curve], dtype=float)
        bws = np.array([b for _, b in curve], dtype=float)

        def hand_bandwidth_gbs(nbytes: float) -> float:
            if nbytes <= sizes[0]:
                return bws[0] * nbytes / sizes[0]
            if nbytes >= sizes[-1]:
                return float(bws[-1])
            return float(
                np.exp(
                    np.interp(np.log(nbytes), np.log(sizes), np.log(bws))
                )
            )

        parts = partition_clusters(plist_mod, DEFAULT_PARAMS.n_cpes)
        expected = 0.0
        for lo, hi in parts:
            nbytes = int(plist_mod.i_starts[hi] - plist_mod.i_starts[lo]) * 4
            if nbytes:
                expected += nbytes / (hand_bandwidth_gbs(nbytes) * 1e9)
        assert res.breakdown["nblist_dma"] == pytest.approx(
            expected, rel=1e-12
        )

    def test_nblist_not_charged_at_peak_anchor(
        self, water_small_mod, nb_mod, plist_mod
    ):
        """The old model divided by the top-anchor bandwidth, making
        small systems' nblist DMA impossibly fast; per-CPE chunks of
        this system sit below the top anchor, so the corrected time is
        strictly slower than peak."""
        from repro.hw.params import DEFAULT_PARAMS

        res = run_kernel(
            water_small_mod, plist_mod, nb_mod, ALL_SPECS["MARK"]
        )
        peak_seconds = (
            plist_mod.n_cluster_pairs * 4
        ) / (DEFAULT_PARAMS.dma_curve[-1][1] * 1e9)
        assert res.breakdown["nblist_dma"] > peak_seconds

    def test_i_lines_ceil_per_partition(
        self, water_small_mod, nb_mod, plist_mod
    ):
        """Each CPE streams its own contiguous i-cluster range: the line
        count must match what the sequential fidelity cache reports for
        that range, and their sum exceeds the old global ceil."""
        from repro.core.fetch import (
            analyze_read_trace,
            sequential_stream_lines,
        )
        from repro.core.packing import Layout, PackedParticles
        from repro.hw.params import DEFAULT_PARAMS

        params = DEFAULT_PARAMS
        packed = PackedParticles.from_pairlist(
            water_small_mod, plist_mod, Layout.SOA, params
        )
        parts = partition_clusters(plist_mod, params.n_cpes)
        total = 0
        for lo, hi in parts:
            n_lines = sequential_stream_lines(
                lo, hi, params.packages_per_line
            )
            if hi > lo:
                seq = analyze_read_trace(
                    np.arange(lo, hi, dtype=np.int64), packed, params
                )
                assert n_lines == seq.misses, (lo, hi)
            total += n_lines
        res = run_kernel(
            water_small_mod, plist_mod, nb_mod, ALL_SPECS["MARK"]
        )
        assert res.stats["i_lines"] == total
        global_ceil = -(-plist_mod.n_clusters // params.packages_per_line)
        assert total > global_ceil  # the old undercount

    def test_speedup_over_guards_both_operands(self):
        from repro.core.kernels import KernelResult

        good = KernelResult("a", np.zeros((1, 3)), 0.0, 1.0)
        bad = KernelResult("b", np.zeros((1, 3)), 0.0, 0.0)
        with pytest.raises(ValueError):
            bad.speedup_over(good)
        with pytest.raises(ValueError):
            good.speedup_over(bad)
        assert good.speedup_over(good) == 1.0

    def test_engine_speedup_guards_both_operands(self):
        from repro.core.engine import EngineResult
        from repro.hw.perf import KernelTiming

        t = KernelTiming()
        t.add("Force", 1.0)
        good = EngineResult(None, None, t, 1, "Ori")
        bad = EngineResult(None, None, KernelTiming(), 1, "Ori")
        with pytest.raises(ValueError):
            good.speedup_over(bad)
        with pytest.raises(ValueError):
            bad.speedup_over(good)


#: Golden cost-model pins (water 600, seed 21, nb_mod, DEFAULT_PARAMS):
#: future cost-model edits must update these numbers *deliberately*.
GOLDEN_BREAKDOWN = {
    "ORI": {
        "compute": 0.004211255172413793,
    },
    "GLD": {
        "compute": 0.00020915862068965517,
        "read_dma": 0.0012940836206896552,
        "nblist_dma": 1.1650275849904328e-06,
        "write_dma": 0.0012589898275862069,
        "init": 1.531968503937008e-05,
        "reduction": 7.887061913434195e-05,
        "mpe_collect": 0.0,
    },
    "PKG": {
        "compute": 0.00020915862068965517,
        "read_dma": 0.0002765167879319904,
        "nblist_dma": 1.1650275849904328e-06,
        "write_dma": 0.0005510618575567485,
        "init": 1.531968503937008e-05,
        "reduction": 7.887061913434195e-05,
        "mpe_collect": 0.0,
    },
    "CACHE": {
        "compute": 0.00020915862068965517,
        "read_dma": 2.68711354668689e-05,
        "nblist_dma": 1.1650275849904328e-06,
        "write_dma": 2.1629351513335847e-05,
        "init": 1.531968503937008e-05,
        "reduction": 7.887061913434195e-05,
        "mpe_collect": 0.0,
    },
    "VEC": {
        "compute": 8.058758620689655e-05,
        "read_dma": 2.68711354668689e-05,
        "nblist_dma": 1.1650275849904328e-06,
        "write_dma": 2.1629351513335847e-05,
        "init": 1.531968503937008e-05,
        "reduction": 7.887061913434195e-05,
        "mpe_collect": 0.0,
    },
    "MARK": {
        "compute": 8.058758620689655e-05,
        "read_dma": 2.68711354668689e-05,
        "nblist_dma": 1.1650275849904328e-06,
        "write_dma": 1.0814675756667923e-05,
        "init": 0.0,
        "reduction": 1.1264821697477044e-05,
        "mpe_collect": 0.0,
    },
    "RMA": {
        "compute": 8.058758620689655e-05,
        "read_dma": 2.68711354668689e-05,
        "nblist_dma": 1.1650275849904328e-06,
        "write_dma": 2.1629351513335847e-05,
        "init": 1.531968503937008e-05,
        "reduction": 7.887061913434195e-05,
        "mpe_collect": 0.0,
    },
    "RCA": {
        "compute": 0.00033015172413793103,
        "read_dma": 3.90191910725221e-05,
        "nblist_dma": 2.258874174711415e-06,
        "write_dma": 1.2236994733903296e-06,
        "init": 0.0,
        "reduction": 0.0,
        "mpe_collect": 0.0,
    },
    "USTC": {
        "compute": 0.00020915862068965517,
        "read_dma": 2.68711354668689e-05,
        "nblist_dma": 1.1650275849904328e-06,
        "write_dma": 6.872976976041977e-05,
        "init": 0.0,
        "reduction": 0.0,
        "mpe_collect": 0.0002857489655172414,
    },
}


class TestGoldenBreakdowns:
    """Pin every rung's modelled breakdown on the fixed-seed system."""

    @pytest.mark.parametrize("name", sorted(GOLDEN_BREAKDOWN))
    def test_breakdown_pinned(self, name, water_small_mod, nb_mod, plist_mod):
        res = run_kernel(water_small_mod, plist_mod, nb_mod, ALL_SPECS[name])
        golden = GOLDEN_BREAKDOWN[name]
        assert res.breakdown.keys() == golden.keys()
        for phase, val in golden.items():
            assert res.breakdown[phase] == pytest.approx(
                val, rel=1e-9, abs=1e-18
            ), phase
