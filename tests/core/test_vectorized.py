"""Bit-identity of the vectorized kernels against the scalar reference.

The vectorized module replaces iteration structure, never arithmetic:
every cell of the impl × backend × half/full × mark matrix must produce
the same forces, energy, write-cache counters, shuffle counts, and
trace events as the scalar fidelity walk — to the bit, not to a
tolerance.  The per-step pruned-lane path is pinned the same way
against `compute_short_range` across coulomb modes, dtypes, and
drift-guard refreshes (ISSUE 8).
"""

import warnings

import numpy as np
import pytest

from repro.core.kernels import ALL_SPECS, run_kernel, run_kernel_sequential
from repro.core.stepcache import partition_clusters
from repro.core.vectorized import (
    KERNEL_IMPLS,
    _pair_terms_compact,
    compact_panels,
    compute_short_range_impl,
    compute_short_range_vectorized,
    resolve_kernel_impl,
)
from repro.md.forces import compute_short_range
from repro.md.nonbonded import NonbondedParams, pair_force_energy
from repro.md.pairlist import build_pair_list
from repro.md.water import build_water_system
from repro.trace.events import Tracer

COULOMB_MODES = ("rf", "cut", "none", "ewald")


@pytest.fixture(scope="module")
def water():
    return build_water_system(600, seed=2019)


@pytest.fixture(scope="module")
def nb():
    return NonbondedParams(r_cut=0.8, r_list=0.9, coulomb_mode="rf")


def _same_result(a, b):
    assert np.array_equal(a.forces, b.forces)
    assert a.energy == b.energy


def _same_counters(a, b):
    for key in (
        "write_misses",
        "write_puts",
        "write_gets",
        "write_first_touches",
        "simd_shuffles",
    ):
        assert a.stats[key] == b.stats[key], key


class TestResolveImpl:
    def test_default_is_scalar(self, monkeypatch):
        monkeypatch.delenv("REPRO_KERNEL", raising=False)
        assert resolve_kernel_impl() == "scalar"

    def test_env_opt_in(self, monkeypatch):
        monkeypatch.setenv("REPRO_KERNEL", "vectorized")
        assert resolve_kernel_impl() == "vectorized"

    def test_argument_beats_env(self, monkeypatch):
        monkeypatch.setenv("REPRO_KERNEL", "vectorized")
        assert resolve_kernel_impl("scalar") == "scalar"

    def test_unknown_rejected(self):
        with pytest.raises(ValueError, match="unknown kernel impl"):
            resolve_kernel_impl("simd9000")

    def test_impl_names_stable(self):
        assert KERNEL_IMPLS == ("scalar", "vectorized")


class TestWalkMatrix:
    """Fidelity-walk matrix: vectorized vs scalar, every observable."""

    @pytest.fixture(scope="class")
    def scalar_ref(self, water, nb):
        refs = {}
        for half in (True, False):
            plist = build_pair_list(water, nb.r_list, half=half)
            for spec_name in ("MARK", "CACHE"):  # mark on / mark off
                tracer = Tracer()
                res = run_kernel_sequential(
                    water, plist, nb, ALL_SPECS[spec_name],
                    n_cpes=8, impl="scalar", tracer=tracer,
                )
                refs[half, spec_name] = (res, tracer.events, plist)
        return refs

    @pytest.mark.parametrize("backend", ["serial", "pool"])
    @pytest.mark.parametrize("spec_name", ["MARK", "CACHE"])
    @pytest.mark.parametrize("half", [True, False])
    def test_bit_identity(self, scalar_ref, water, nb, half, spec_name, backend):
        ref, ref_events, plist = scalar_ref[half, spec_name]
        tracer = Tracer()
        res = run_kernel_sequential(
            water, plist, nb, ALL_SPECS[spec_name],
            n_cpes=8, impl="vectorized", backend=backend, tracer=tracer,
        )
        _same_result(ref, res)
        _same_counters(ref, res)
        assert tracer.events == ref_events

    def test_simd_shuffles_replayed(self, scalar_ref):
        res, _, _ = scalar_ref[True, "MARK"]
        assert res.stats["simd_shuffles"] > 0


class TestTraceNoDuplicates:
    """Regression: `run_kernel_sequential` borrows the fast path's
    timing without re-emitting its kernel spans into the live tracer, so
    a Chrome trace shows each kernel once (ISSUE 8)."""

    def test_fast_path_spans_not_reemitted(self, water, nb):
        plist = build_pair_list(water, nb.r_list)
        fast_tracer = Tracer()
        run_kernel(
            water, plist, nb, ALL_SPECS["MARK"], tracer=fast_tracer
        )
        fast_names = {e.name for e in fast_tracer.events}
        assert fast_names  # the fast path does instrument its own runs

        seq_tracer = Tracer()
        run_kernel_sequential(
            water, plist, nb, ALL_SPECS["MARK"], n_cpes=8, tracer=seq_tracer
        )
        seq_names = {e.name for e in seq_tracer.events}
        assert seq_names == {"fidelity_walk"}
        assert not (fast_names & seq_names)

    def test_no_identical_event_pairs(self, water, nb):
        plist = build_pair_list(water, nb.r_list)
        tracer = Tracer()
        run_kernel_sequential(
            water, plist, nb, ALL_SPECS["MARK"], n_cpes=8, tracer=tracer
        )
        seen = set()
        for e in tracer.events:
            key = (e.name, e.category, e.cpe_id, e.start_cycle)
            assert key not in seen, f"duplicate trace event: {key}"
            seen.add(key)


class TestEmptyPartitions:
    """`n_clusters < n_cpes` leaves empty tail partitions; both walks
    must return clean zero contributions for them."""

    @pytest.fixture(scope="class")
    def tiny(self):
        system = build_water_system(150, seed=2019)
        nb = NonbondedParams(r_cut=0.45, r_list=0.55, coulomb_mode="rf")
        return system, nb, build_pair_list(system, nb.r_list)

    def test_partitions_are_actually_empty(self, tiny):
        _, _, plist = tiny
        parts = partition_clusters(plist, 64)
        assert plist.n_clusters < 64
        assert sum(1 for lo, hi in parts if lo == hi) > 0
        assert parts[-1][1] == plist.n_clusters

    @pytest.mark.parametrize("impl", KERNEL_IMPLS)
    def test_walks_match_reference(self, tiny, impl):
        system, nb, plist = tiny
        ref = compute_short_range(system, plist, nb, dtype=np.float32)
        res = run_kernel_sequential(
            system, plist, nb, ALL_SPECS["MARK"], n_cpes=64, impl=impl
        )
        np.testing.assert_allclose(res.forces, ref.forces, atol=5e-4)
        assert np.isfinite(res.energy)

    def test_impls_bit_identical(self, tiny):
        system, nb, plist = tiny
        a = run_kernel_sequential(
            system, plist, nb, ALL_SPECS["MARK"], n_cpes=64, impl="scalar"
        )
        b = run_kernel_sequential(
            system, plist, nb, ALL_SPECS["MARK"], n_cpes=64, impl="vectorized"
        )
        _same_result(a, b)
        _same_counters(a, b)


class TestPerStepPath:
    """`compute_short_range_vectorized` vs the chunked reference."""

    @pytest.mark.parametrize("dtype", [np.float32, np.float64])
    @pytest.mark.parametrize("half", [True, False])
    @pytest.mark.parametrize("mode", COULOMB_MODES)
    def test_bit_identity_with_drift(self, mode, half, dtype):
        rng = np.random.default_rng(7)
        system = build_water_system(600, seed=2019)
        params = NonbondedParams(r_cut=0.8, r_list=0.9, coulomb_mode=mode)
        plist = build_pair_list(system, params.r_list, half=half)
        for it in range(4):
            ref = compute_short_range(system, plist, params, dtype=dtype)
            res = compute_short_range_vectorized(
                system, plist, params, dtype=dtype
            )
            assert np.array_equal(ref.forces, res.forces), (mode, half, it)
            assert ref.energy == res.energy
            assert ref.virial == res.virial
            assert ref.n_pairs_in_cutoff == res.n_pairs_in_cutoff
            # Small drift on most iterations; a large kick on the third
            # forces the drift guard to re-anchor the compact panels.
            scale = 0.06 if it == 2 else 0.004
            system.positions += rng.normal(0, scale, system.positions.shape)

    def test_dispatcher_routes_both_impls(self, water, nb):
        plist = build_pair_list(water, nb.r_list)
        a = compute_short_range_impl(
            water, plist, nb, dtype=np.float32, impl="scalar"
        )
        b = compute_short_range_impl(
            water, plist, nb, dtype=np.float32, impl="vectorized"
        )
        assert np.array_equal(a.forces, b.forces)
        assert a.energy == b.energy


class TestPairTermsCompact:
    """The fused in-place pair kernel vs `pair_force_energy`, lane for
    lane on the real compact panels plus randomised r2."""

    @pytest.mark.parametrize("dtype", [np.float32, np.float64])
    @pytest.mark.parametrize("mode", COULOMB_MODES)
    def test_bitwise_equal(self, water, mode, dtype):
        params = NonbondedParams(r_cut=0.8, r_list=0.9, coulomb_mode=mode)
        plist = build_pair_list(water, params.r_list)
        cp = compact_panels(water, plist, params, dtype=dtype)
        k = cp.n_kept
        rng = np.random.default_rng(11)
        # Random r2 spanning in-cutoff, out-of-cutoff and exact-zero
        # (overlapping padding) lanes.
        r2 = (rng.uniform(0.0, 1.3 * params.r_cut**2, k)).astype(dtype)
        r2[:: max(k // 17, 1)] = dtype(0.0)
        ref_f, ref_e = pair_force_energy(
            r2, cp.qq.copy(), cp.c6.copy(), cp.c12.copy(), params
        )
        buf = cp.bufs["r2b"][:k]
        buf[...] = r2
        f, e = _pair_terms_compact(buf, cp, params)
        assert np.array_equal(f, ref_f)
        assert np.array_equal(e, ref_e)

    def test_masked_lanes_warning_free(self, water):
        params = NonbondedParams(r_cut=0.8, r_list=0.9, coulomb_mode="rf")
        plist = build_pair_list(water, params.r_list)
        cp = compact_panels(water, plist, params, dtype=np.float32)
        k = cp.n_kept
        buf = cp.bufs["r2b"][:k]
        buf.fill(0.0)  # every lane an overlapping self-pair
        with warnings.catch_warnings():
            warnings.simplefilter("error")
            f, e = _pair_terms_compact(buf, cp, params)
        assert not f.any()
        assert not e.any()


class TestMaskedLaneWarnings:
    """Regression: masked lanes (r2 == 0 self-pairs, out-of-cutoff) are
    clamped before the division, so the hot path emits no
    RuntimeWarnings — enforced suite-wide by the pytest
    ``error::RuntimeWarning`` filter."""

    @pytest.mark.parametrize("mode", COULOMB_MODES)
    def test_pair_force_energy_zero_r2(self, mode):
        params = NonbondedParams(r_cut=0.8, r_list=0.9, coulomb_mode=mode)
        r2 = np.array([0.0, 0.04, 1.0], dtype=np.float32)
        ones = np.ones(3, dtype=np.float32)
        mask = np.array([False, True, True])
        with warnings.catch_warnings():
            warnings.simplefilter("error")
            f, e = pair_force_energy(
                r2, ones, 1e-3 * ones, 1e-6 * ones, params, mask=mask
            )
        assert f[0] == 0.0 and e[0] == 0.0
        assert np.isfinite(f).all() and np.isfinite(e).all()

    def test_unmasked_self_pair_guarded(self):
        # Without an explicit mask the r2 > 0 guard must still hold.
        params = NonbondedParams(r_cut=0.8, r_list=0.9, coulomb_mode="rf")
        r2 = np.zeros(4, dtype=np.float32)
        ones = np.ones(4, dtype=np.float32)
        with warnings.catch_warnings():
            warnings.simplefilter("error")
            f, e = pair_force_energy(r2, ones, ones, ones, params)
        assert not f.any() and not e.any()


class TestEngineParity:
    """Whole-trajectory parity: the engine under both impls."""

    def test_positions_and_frames_identical(self):
        from repro.core.engine import EngineConfig, SWGromacsEngine

        nb = NonbondedParams(r_cut=0.8, r_list=0.9, coulomb_mode="rf")
        results = {}
        for impl in KERNEL_IMPLS:
            system = build_water_system(600, seed=2019)
            engine = SWGromacsEngine(
                system,
                EngineConfig(
                    nonbonded=nb, step_reuse=True, kernel_impl=impl,
                    report_interval=3,
                ),
            )
            res = engine.run(12)
            results[impl] = (system.positions.copy(), res.reporter.frames)
        pos_s, frames_s = results["scalar"]
        pos_v, frames_v = results["vectorized"]
        assert np.array_equal(pos_s, pos_v)
        assert frames_s == frames_v
