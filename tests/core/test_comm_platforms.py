"""§3.6 transport swap + §4.5 platform TTF model (Table 4, Eqs. 3-4)."""

import pytest

from repro.core.comm_opt import Transport, message_sweep, step_comm
from repro.core.platforms import (
    fair_chip_count,
    figure11_series,
    modelled_figure11,
    ttf_ratio,
)
from repro.parallel.mpi_sim import mpi_message_seconds
from repro.parallel.rdma import crossover_size_bytes, rdma_message_seconds, rdma_speedup


class TestTransportModels:
    def test_rdma_always_faster(self):
        for size in (64, 1024, 65536, 10**6):
            assert rdma_message_seconds(size) < mpi_message_seconds(size)

    def test_small_messages_gain_most(self):
        assert rdma_speedup(64) > rdma_speedup(10**6)

    def test_latency_floor(self):
        from repro.hw.params import DEFAULT_PARAMS

        assert rdma_message_seconds(0) == pytest.approx(
            DEFAULT_PARAMS.rdma_latency_s
        )
        assert mpi_message_seconds(0) == pytest.approx(
            DEFAULT_PARAMS.mpi_latency_s
        )

    def test_crossover_monotone(self):
        size = crossover_size_bytes(4.0)
        assert rdma_speedup(size / 10) > 4.0 > rdma_speedup(size * 10)

    def test_crossover_rejects_unreachable_target(self):
        with pytest.raises(ValueError):
            crossover_size_bytes(100.0)

    def test_message_sweep_rows(self):
        rows = message_sweep()
        assert all(r.speedup > 1.0 for r in rows)
        assert rows[0].speedup > rows[-1].speedup

    def test_negative_size_rejected(self):
        with pytest.raises(ValueError):
            mpi_message_seconds(-1)
        with pytest.raises(ValueError):
            rdma_message_seconds(-1)


class TestStepComm:
    def test_single_rank_free(self):
        comm = step_comm(48000, 1, 7.8, 1.0)
        assert comm.total == 0.0

    def test_rdma_beats_mpi(self):
        mpi = step_comm(48000, 64, 7.8, 1.0, Transport.MPI)
        rdma = step_comm(48000, 64, 7.8, 1.0, Transport.RDMA)
        assert rdma.total < mpi.total
        assert rdma.energy_seconds < mpi.energy_seconds

    def test_components_positive(self):
        comm = step_comm(48000, 64, 7.8, 1.0)
        assert comm.halo_seconds > 0
        assert comm.pme_seconds > 0
        assert comm.energy_seconds > 0

    def test_no_pme_option(self):
        comm = step_comm(48000, 64, 7.8, 1.0, use_pme=False)
        assert comm.pme_seconds == 0.0


class TestTtfModel:
    def test_eq3_knl_ratio(self):
        """Paper Eq. (3): TTF_SW / TTF_KNL ~ 150."""
        assert ttf_ratio("SW26010", "KNL") == pytest.approx(150, rel=0.03)

    def test_eq4_p100_ratio(self):
        """Paper Eq. (4): TTF_SW / TTF_P100 ~ 24."""
        assert ttf_ratio("SW26010", "P100") == pytest.approx(24, rel=0.03)

    def test_fair_chip_counts(self):
        assert fair_chip_count("KNL") == pytest.approx(150, abs=5)
        assert fair_chip_count("P100") == pytest.approx(24, abs=2)

    def test_ratio_antisymmetric(self):
        assert ttf_ratio("KNL", "SW26010") == pytest.approx(
            1.0 / ttf_ratio("SW26010", "KNL")
        )

    def test_unknown_platform(self):
        with pytest.raises(KeyError):
            ttf_ratio("SW26010", "A100")


class TestFigure11:
    def test_paper_series_shape(self):
        bars = figure11_series()
        by_label = {b.label: b.speedup for b in bars}
        # CPE versions beat their MPE baselines everywhere.
        assert by_label["150x CPE"] > by_label["KNL"] > by_label["150x MPE"]
        assert by_label["24x CPE"] > by_label["24x MPE"]
        # Scalability claim: 48 CPEs beat 2 P100s.
        assert by_label["48x CPE"] > by_label["2x P100"]

    def test_modelled_series_consistency(self):
        bars = modelled_figure11(overall_cpe_speedup=18.0)
        by_label = {b.label: b.speedup for b in bars}
        assert by_label["150x CPE"] == pytest.approx(18.0, rel=0.05)
        assert by_label["150x MPE"] == 1.0
        assert by_label["48x CPE"] > by_label["2x P100"]
