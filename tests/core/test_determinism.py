"""Determinism regression: same seed, same machine -> same bits.

The resilience subsystem's bit-identical-restart guarantee only means
anything if the engine itself is deterministic; this pins it directly.
"""

import numpy as np

from repro.core.engine import EngineConfig, SWGromacsEngine
from repro.md.integrator import IntegratorConfig
from repro.md.mdloop import MdConfig, MdLoop
from repro.md.water import build_water_system


def _engine_run(seed, nb, thermostat="vrescale", n_steps=12):
    system = build_water_system(750, seed=seed)
    engine = SWGromacsEngine(
        system,
        EngineConfig(
            nonbonded=nb,
            integrator=IntegratorConfig(thermostat=thermostat),
        ),
    )
    return engine.run(n_steps)


def test_engine_runs_are_byte_identical(nb_water_small):
    a = _engine_run(11, nb_water_small)
    b = _engine_run(11, nb_water_small)
    assert a.system.positions.tobytes() == b.system.positions.tobytes()
    assert a.system.velocities.tobytes() == b.system.velocities.tobytes()
    assert a.timing.seconds == b.timing.seconds


def test_different_seeds_diverge(nb_water_small):
    a = _engine_run(11, nb_water_small)
    b = _engine_run(12, nb_water_small)
    assert a.system.positions.tobytes() != b.system.positions.tobytes()


def test_reference_loop_is_deterministic(nb_water_small):
    def run():
        system = build_water_system(750, seed=7)
        return MdLoop(system, MdConfig(nonbonded=nb_water_small)).run(10)

    a, b = run(), run()
    assert a.system.positions.tobytes() == b.system.positions.tobytes()
    assert a.system.velocities.tobytes() == b.system.velocities.tobytes()


def test_stochastic_thermostat_is_seed_deterministic(nb_water_small):
    """The v-rescale thermostat draws from the integrator RNG every step;
    determinism must hold through the stochastic path too."""
    a = _engine_run(3, nb_water_small, thermostat="vrescale")
    b = _engine_run(3, nb_water_small, thermostat="vrescale")
    assert np.array_equal(a.system.velocities, b.system.velocities)
