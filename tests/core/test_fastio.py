"""§3.7 fast I/O: formatter correctness, buffering, cost model."""

import io

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.fastio import (
    BufferedTrajectoryWriter,
    FastFloatFormatter,
    io_model_seconds,
)


class TestFastFormatter:
    def test_basic_values(self):
        fmt = FastFloatFormatter(3)
        assert fmt.format(1.2345) == "1.234" or fmt.format(1.2345) == "1.235"
        assert fmt.format(0.0) == "0.000"
        assert fmt.format(-2.5) == "-2.500"
        assert fmt.format(10.0) == "10.000"

    def test_zero_decimals(self):
        fmt = FastFloatFormatter(0)
        assert fmt.format(3.6) == "4"
        assert fmt.format(-0.4) == "0"

    def test_rejects_non_finite(self):
        fmt = FastFloatFormatter()
        with pytest.raises(ValueError):
            fmt.format(float("nan"))
        with pytest.raises(ValueError):
            fmt.format(float("inf"))

    def test_rejects_bad_decimals(self):
        with pytest.raises(ValueError):
            FastFloatFormatter(10)

    @settings(max_examples=100, deadline=None)
    @given(value=st.floats(-1e6, 1e6, allow_nan=False))
    def test_accuracy_within_half_ulp_of_precision(self, value):
        """The 'little accuracy sacrifice': parsed output differs from the
        input by at most half the last printed digit."""
        fmt = FastFloatFormatter(3)
        parsed = float(fmt.format(value))
        assert abs(parsed - value) <= 0.5 * 1e-3 + 1e-9 * abs(value)

    @settings(max_examples=30, deadline=None)
    @given(values=st.lists(st.floats(-1e4, 1e4, allow_nan=False), min_size=1, max_size=60))
    def test_array_path_matches_scalar(self, values):
        fmt = FastFloatFormatter(3)
        array_out = fmt.format_array(np.array(values))
        scalar_out = [fmt.format(v) for v in values]
        assert array_out == scalar_out


class TestBufferedWriter:
    def test_writes_parse_back(self):
        sink = io.BytesIO()
        writer = BufferedTrajectoryWriter(sink, buffer_bytes=10**6)
        pos = np.array([[1.25, -0.5, 3.0], [0.0, 2.0, -1.125]])
        writer.write_frame(7, pos)
        writer.flush()
        lines = sink.getvalue().decode().splitlines()
        assert lines[0] == "frame 7 2"
        parsed = np.array([[float(x) for x in line.split()] for line in lines[1:]])
        np.testing.assert_allclose(parsed, pos, atol=5.1e-4)

    def test_buffering_batches_syscalls(self):
        sink = io.BytesIO()
        writer = BufferedTrajectoryWriter(sink, buffer_bytes=10**7)
        for step in range(20):
            writer.write_frame(step, np.zeros((50, 3)))
        assert writer.n_syscalls == 0  # everything still buffered
        writer.flush()
        assert writer.n_syscalls == 1

    def test_small_buffer_flushes_automatically(self):
        sink = io.BytesIO()
        writer = BufferedTrajectoryWriter(sink, buffer_bytes=64)
        writer.write_frame(0, np.zeros((10, 3)))
        assert writer.n_syscalls >= 1

    def test_validation(self):
        with pytest.raises(ValueError):
            BufferedTrajectoryWriter(io.BytesIO(), buffer_bytes=0)
        writer = BufferedTrajectoryWriter(io.BytesIO())
        with pytest.raises(ValueError):
            writer.write_frame(0, np.zeros((3, 2)))


class TestIoModel:
    def test_fast_beats_slow(self):
        slow = io_model_seconds(3_000_000, fast=False)
        fast = io_model_seconds(3_000_000, fast=True)
        assert fast.total < slow.total / 3

    def test_slow_dominated_by_formatting(self):
        slow = io_model_seconds(1_000_000, fast=False)
        assert slow.format_seconds > slow.syscall_seconds

    def test_fast_syscall_count_collapses(self):
        slow = io_model_seconds(3_000_000, fast=False)
        fast = io_model_seconds(3_000_000, fast=True)
        assert fast.syscall_seconds < slow.syscall_seconds / 100

    def test_zero_particles(self):
        cost = io_model_seconds(0)
        assert cost.total == 0.0

    def test_rejects_negative(self):
        with pytest.raises(ValueError):
            io_model_seconds(-1)
