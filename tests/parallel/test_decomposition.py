"""Domain decomposition: assignment, halos, and a functional multi-rank
force computation that must equal the single-domain result."""

import numpy as np
import pytest

from repro.md.forces import brute_force_short_range
from repro.md.nonbonded import NonbondedParams
from repro.parallel.decomposition import (
    DomainDecomposition,
    factor_ranks,
    halo_bytes_per_step,
)


class TestFactorRanks:
    @pytest.mark.parametrize(
        "n,expected", [(1, {1}), (8, {2}), (64, {4}), (12, {2, 3})]
    )
    def test_near_cubic(self, n, expected):
        assert set(factor_ranks(n)) == expected

    def test_prime_degenerates(self):
        assert sorted(factor_ranks(7)) == [1, 1, 7]

    def test_validation(self):
        with pytest.raises(ValueError):
            factor_ranks(0)


class TestAssignment:
    def test_every_particle_owned_once(self, water_small):
        dd = DomainDecomposition(water_small.box, 8)
        owners = dd.assign(water_small.positions)
        assert owners.min() >= 0 and owners.max() < 8
        # Each rank's subdomain really contains its particles.
        wrapped = water_small.box.wrap(water_small.positions)
        for rank in range(8):
            mine = wrapped[owners == rank]
            sub = dd.subdomains[rank]
            assert np.all(sub.contains(mine))

    def test_subdomains_tile_box(self, water_small):
        dd = DomainDecomposition(water_small.box, 8)
        total = sum(s.volume for s in dd.subdomains)
        assert total == pytest.approx(water_small.box.volume)


class TestHalo:
    def test_halo_particles_near_boundary(self, water_small):
        dd = DomainDecomposition(water_small.box, 8)
        r_halo = 0.3
        halo = dd.halo_indices(water_small.positions, 0, r_halo)
        owners = dd.assign(water_small.positions)
        assert np.all(owners[halo] != 0)
        # Every halo particle is genuinely within r_halo of the cell.
        sub = dd.subdomains[0]
        wrapped = water_small.box.wrap(water_small.positions)
        center = (sub.lo + sub.hi) / 2
        half = (sub.hi - sub.lo) / 2
        d = water_small.box.minimum_image(wrapped[halo] - center)
        outside = np.maximum(np.abs(d) - half, 0.0)
        assert np.all(np.sqrt((outside**2).sum(axis=1)) < r_halo)

    def test_halo_completeness_for_forces(self, water_small):
        """Owned + halo particles suffice to compute owned forces exactly:
        the invariant domain decomposition rests on."""
        nb = NonbondedParams(r_cut=0.6, r_list=0.6, coulomb_mode="rf")
        dd = DomainDecomposition(water_small.box, 8)
        owners = dd.assign(water_small.positions)
        ref = brute_force_short_range(water_small, nb)
        rank = 0
        halo = dd.halo_indices(water_small.positions, rank, nb.r_cut)
        local = np.nonzero(owners == rank)[0]
        keep = np.concatenate([local, halo])
        # Rebuild a sub-system with only owned + halo particles.
        from repro.md.system import ParticleSystem
        from repro.md.topology import Topology

        topo = water_small.topology
        sub_topo = Topology(topo.atom_types)
        type_names = [topo.atom_types[t].name for t in topo.type_ids[keep]]
        # preserve molecule identity for exclusions
        for idx, orig in enumerate(keep):
            sub_topo.add_particles(
                [topo.atom_types[topo.type_ids[orig]].name],
                [topo.charges[orig]],
                mol_id=int(topo.mol_ids[orig]),
            )
        sub = ParticleSystem(
            water_small.positions[keep], water_small.box, sub_topo
        )
        sub_res = brute_force_short_range(sub, nb)
        np.testing.assert_allclose(
            sub_res.forces[: len(local)], ref.forces[local], atol=1e-9
        )

    def test_halo_fraction_monotone_in_radius(self, water_small):
        dd = DomainDecomposition(water_small.box, 8)
        assert dd.halo_fraction(0, 0.4) > dd.halo_fraction(0, 0.2) > 0

    def test_halo_bytes_model(self):
        assert halo_bytes_per_step(1000, 0.5) == pytest.approx(
            2 * 1000 * 0.5 * 28
        )
        with pytest.raises(ValueError):
            halo_bytes_per_step(-1, 0.5)
