"""Host-parallel execution backend (DESIGN.md §9).

The load-bearing property is *bit-identity*: everything the simulator
computes — forces, energies, cache counters, trace-event streams, fault
replays — must be byte-for-byte the same whether the work ran in-process
(`SerialBackend`) or on real worker processes (`PoolBackend`).  These
tests pin that contract, plus backend selection precedence, shared-memory
round trips, and crashed-worker surfacing.
"""

from __future__ import annotations

import os

import numpy as np
import pytest

from repro.core.kernels import (
    ALL_SPECS,
    run_kernel_sequential,
    run_strategy_sweep,
)
from repro.hw.params import DEFAULT_PARAMS
from repro.md.pairlist import build_pair_list
from repro.md.water import build_water_system
from repro.parallel.multirank import derive_rank_faults, run_mpi_ranks
from repro.parallel import pool as pool_mod
from repro.parallel.pool import (
    BACKEND_ENV,
    WORKERS_ENV,
    PoolBackend,
    SerialBackend,
    SharedArray,
    WorkerCrashError,
    as_input,
    close_shared_backend,
    host_cpu_count,
    resolve_backend,
    shared_backend,
)
from repro.trace.events import Tracer


# ---------------------------------------------------------------------------
# Fixtures: one small water box and one long-lived 2-worker pool.
# ---------------------------------------------------------------------------


@pytest.fixture(scope="module")
def water_600():
    return build_water_system(600, seed=21)


@pytest.fixture(scope="module")
def nb_75():
    from repro.md.nonbonded import NonbondedParams

    return NonbondedParams(r_cut=0.75, r_list=0.85, coulomb_mode="rf")


@pytest.fixture(scope="module")
def plist_600(water_600, nb_75):
    return build_pair_list(water_600, nb_75.r_list)


@pytest.fixture(scope="module")
def pool2():
    with PoolBackend(2) as backend:
        yield backend


# ---------------------------------------------------------------------------
# Shared-memory arrays
# ---------------------------------------------------------------------------


class TestSharedArray:
    def test_roundtrip_and_readonly(self):
        src = np.arange(24, dtype=np.float64).reshape(6, 4)
        handle = SharedArray.create(src)
        try:
            out = handle.array()
            np.testing.assert_array_equal(out, src)
            assert not out.flags.writeable
            with pytest.raises(ValueError):
                out[0, 0] = -1.0
        finally:
            handle.unlink()

    def test_pickles_header_not_payload(self):
        import pickle

        src = np.zeros(1024, dtype=np.float64)
        handle = SharedArray.create(src)
        try:
            blob = pickle.dumps(handle)
            assert len(blob) < 512  # name + shape + dtype, never 8 KiB
            clone = pickle.loads(blob)
            np.testing.assert_array_equal(clone.array(), src)
        finally:
            handle.unlink()

    def test_unlink_twice_is_safe(self):
        handle = SharedArray.create(np.ones(3))
        handle.unlink()
        handle.unlink()

    def test_as_input_accepts_both(self):
        arr = np.arange(5.0)
        np.testing.assert_array_equal(as_input(arr), arr)
        handle = SharedArray.create(arr)
        try:
            np.testing.assert_array_equal(as_input(handle), arr)
        finally:
            handle.unlink()


# ---------------------------------------------------------------------------
# Backend selection
# ---------------------------------------------------------------------------


class TestBackendSelection:
    def test_default_is_serial(self, monkeypatch):
        monkeypatch.delenv(BACKEND_ENV, raising=False)
        assert isinstance(resolve_backend(), SerialBackend)

    def test_env_selects_pool(self, monkeypatch):
        monkeypatch.setenv(BACKEND_ENV, "pool")
        monkeypatch.setenv(WORKERS_ENV, "3")
        backend = resolve_backend()
        assert isinstance(backend, PoolBackend)
        assert backend.n_workers == 3

    def test_explicit_name_beats_env(self, monkeypatch):
        monkeypatch.setenv(BACKEND_ENV, "pool")
        assert isinstance(resolve_backend("serial"), SerialBackend)

    def test_explicit_workers_beat_env(self, monkeypatch):
        monkeypatch.setenv(WORKERS_ENV, "7")
        assert resolve_backend("pool", workers=2).n_workers == 2

    def test_workers_env_alone_stays_serial(self, monkeypatch):
        monkeypatch.delenv(BACKEND_ENV, raising=False)
        monkeypatch.setenv(WORKERS_ENV, "4")
        assert isinstance(resolve_backend(), SerialBackend)

    def test_unknown_name_rejected(self):
        with pytest.raises(ValueError, match="unknown backend"):
            resolve_backend("threads")

    def test_bad_worker_count_rejected(self):
        with pytest.raises(ValueError):
            PoolBackend(0)

    def test_object_passes_through(self, pool2):
        assert resolve_backend(pool2) is pool2
        assert shared_backend(pool2) is pool2

    def test_shared_backend_is_cached(self, monkeypatch):
        monkeypatch.delenv(BACKEND_ENV, raising=False)
        monkeypatch.delenv(WORKERS_ENV, raising=False)
        assert shared_backend() is shared_backend()
        assert shared_backend("serial") is shared_backend("serial")

    def test_host_cpu_count_positive(self):
        assert host_cpu_count() >= 1


class TestCloseSharedBackend:
    """Explicit release of the process-wide backend registry (used by the
    serve layer's graceful drain instead of waiting for atexit)."""

    def test_close_empties_registry_and_respawns(self, monkeypatch):
        monkeypatch.delenv(BACKEND_ENV, raising=False)
        monkeypatch.delenv(WORKERS_ENV, raising=False)
        first = shared_backend()
        assert pool_mod._SHARED_BACKENDS
        close_shared_backend()
        assert pool_mod._SHARED_BACKENDS == {}
        second = shared_backend()
        assert second is not first
        assert second.map(_square, [3]) == [9]
        close_shared_backend()

    def test_close_is_idempotent(self):
        close_shared_backend()
        close_shared_backend()
        assert pool_mod._SHARED_BACKENDS == {}

    def test_closed_pool_backend_recovers_lazily(self, monkeypatch):
        # A component still holding the closed instance keeps working:
        # the executor respawns on the next map().
        monkeypatch.setenv(BACKEND_ENV, "pool")
        monkeypatch.setenv(WORKERS_ENV, "2")
        backend = shared_backend()
        assert backend.map(_square, [2]) == [4]
        close_shared_backend()
        assert backend.map(_square, [5]) == [25]
        backend.close()


# ---------------------------------------------------------------------------
# map semantics
# ---------------------------------------------------------------------------


def _square(x):
    return x * x


def _raise_value_error(x):
    raise ValueError(f"task {x} failed")


def _exit_hard(x):
    os._exit(17)


class TestMapSemantics:
    def test_serial_map_ordered(self):
        assert SerialBackend().map(_square, [3, 1, 2]) == [9, 1, 4]

    def test_pool_map_ordered(self, pool2):
        assert pool2.map(_square, list(range(16))) == [
            x * x for x in range(16)
        ]

    def test_empty_map(self, pool2):
        assert pool2.map(_square, []) == []
        assert SerialBackend().map(_square, []) == []

    def test_task_exception_propagates_as_itself(self, pool2):
        with pytest.raises(ValueError, match="task 5 failed"):
            pool2.map(_raise_value_error, [5])

    def test_dead_worker_raises_worker_crash_error(self):
        # A private pool: the crash poisons the executor by design.
        with PoolBackend(2) as backend:
            with pytest.raises(WorkerCrashError, match="worker process died"):
                backend.map(_exit_hard, [1, 2])
            # The poisoned executor was discarded; the backend recovers.
            assert backend.map(_square, [4]) == [16]


# ---------------------------------------------------------------------------
# Bit-identity: fidelity walk, sweep, multi-rank fault replay
# ---------------------------------------------------------------------------


def _events_key(tracer):
    return [
        (
            e.name,
            e.category,
            e.cpe_id,
            e.start_cycle,
            e.duration_cycles,
            tuple(sorted(e.args.items())),
        )
        for e in tracer.events
    ]


class TestSerialPoolBitIdentity:
    @pytest.mark.parametrize("name", ["CACHE", "MARK"])
    def test_fidelity_walk_identical(
        self, name, water_600, nb_75, plist_600, pool2
    ):
        spec = ALL_SPECS[name]
        trace_a = Tracer(DEFAULT_PARAMS)
        trace_b = Tracer(DEFAULT_PARAMS)
        serial = run_kernel_sequential(
            water_600, plist_600, nb_75, spec, n_cpes=8,
            tracer=trace_a, backend=SerialBackend(),
        )
        pooled = run_kernel_sequential(
            water_600, plist_600, nb_75, spec, n_cpes=8,
            tracer=trace_b, backend=pool2,
        )
        np.testing.assert_array_equal(serial.forces, pooled.forces)
        assert serial.energy == pooled.energy
        assert serial.stats == pooled.stats
        assert serial.elapsed_seconds == pooled.elapsed_seconds
        assert _events_key(trace_a) == _events_key(trace_b)

    def test_strategy_sweep_identical(self, water_600, nb_75, plist_600, pool2):
        serial = run_strategy_sweep(
            water_600, plist_600, nb_75, ["CACHE", "VEC", "MARK"],
            backend=SerialBackend(),
        )
        pooled = run_strategy_sweep(
            water_600, plist_600, nb_75, ["CACHE", "VEC", "MARK"],
            backend=pool2,
        )
        assert list(serial) == list(pooled)
        for label in serial:
            np.testing.assert_array_equal(
                serial[label].forces, pooled[label].forces
            )
            assert serial[label].energy == pooled[label].energy
            assert serial[label].elapsed_seconds == pooled[label].elapsed_seconds
            assert serial[label].stats == pooled[label].stats

    def test_pair_list_build_identical(self, water_600, nb_75, pool2):
        serial = build_pair_list(water_600, nb_75.r_list)
        plist_pool = build_pair_list(water_600, nb_75.r_list, backend=pool2)
        np.testing.assert_array_equal(serial.pair_ci, plist_pool.pair_ci)
        np.testing.assert_array_equal(serial.pair_cj, plist_pool.pair_cj)
        np.testing.assert_array_equal(serial.perm, plist_pool.perm)

    def test_exact_filter_chunks_identical(self, water_600, nb_75, pool2):
        # Shrink the chunk below the candidate count so the pool path
        # (shared positions + per-chunk jobs) actually fans out.
        from repro.md.pairlist import _cluster_particles, _exact_cluster_filter

        box = water_600.box
        _, _, sorted_pos, _ = _cluster_particles(
            box.wrap(water_600.positions), box
        )
        n_clusters = len(sorted_pos) // 4
        rng = np.random.default_rng(3)
        ci = rng.integers(0, n_clusters, size=1200)
        cj = rng.integers(0, n_clusters, size=1200)
        serial = _exact_cluster_filter(sorted_pos, box, ci, cj, nb_75.r_list)
        pooled = _exact_cluster_filter(
            sorted_pos, box, ci, cj, nb_75.r_list, chunk=256, backend=pool2
        )
        np.testing.assert_array_equal(serial, pooled)

    def test_multirank_fault_replay_identical(self, water_600, nb_75, pool2):
        from repro.core.engine import EngineConfig
        from repro.resilience import ResiliencePolicy

        config = EngineConfig(
            nonbonded=nb_75,
            optimization_level=3,
            n_cgs=2,
            resilience=ResiliencePolicy(faults="seed=11,dma=1e-3,msg=5e-3"),
        )
        serial = run_mpi_ranks(
            water_600, 3, config=config, n_ranks=2, backend=SerialBackend()
        )
        pooled = run_mpi_ranks(
            water_600, 3, config=config, n_ranks=2, backend=pool2
        )
        np.testing.assert_array_equal(
            serial.reduced_energy, pooled.reduced_energy
        )
        assert serial.comm_seconds == pooled.comm_seconds
        assert serial.modelled_seconds == pooled.modelled_seconds
        for a, b in zip(serial.ranks, pooled.ranks):
            assert a.rank == b.rank
            np.testing.assert_array_equal(a.positions, b.positions)
            np.testing.assert_array_equal(a.velocities, b.velocities)
            assert a.fault_counts == b.fault_counts
            assert a.timing_seconds == b.timing_seconds

    def test_multirank_trace_merges_by_rank(self, water_600, nb_75, pool2):
        from repro.core.engine import EngineConfig

        config = EngineConfig(nonbonded=nb_75, optimization_level=3, n_cgs=2)
        trace_a = Tracer(config.chip)
        trace_b = Tracer(config.chip)
        run_mpi_ranks(
            water_600, 2, config=config, n_ranks=2,
            backend=SerialBackend(), tracer=trace_a,
        )
        run_mpi_ranks(
            water_600, 2, config=config, n_ranks=2,
            backend=pool2, tracer=trace_b,
        )
        assert len(trace_a.events) > 0
        assert _events_key(trace_a) == _events_key(trace_b)
        # Rank 1's CPE events landed on shifted tracks.
        cpe_tracks = {e.cpe_id for e in trace_a.events if e.cpe_id >= 0}
        assert any(t >= config.chip.n_cpes for t in cpe_tracks)


class TestRankFaultDerivation:
    def test_none_stays_none(self):
        assert derive_rank_faults(None, 3) is None

    def test_ranks_get_distinct_streams(self):
        from repro.resilience.faults import FaultSpec

        base = FaultSpec(seed=5, dma_error_rate=1e-3)
        seeds = {derive_rank_faults(base, r).seed for r in range(8)}
        assert len(seeds) == 8
        assert all(s != 5 for s in seeds)
        assert derive_rank_faults(base, 2).dma_error_rate == 1e-3


# ---------------------------------------------------------------------------
# Batched IPC: map_batched coalesces small tasks, same results as map
# ---------------------------------------------------------------------------


def _pid(_):
    return os.getpid()


class TestMapBatched:
    def test_serial_matches_map(self):
        assert SerialBackend().map_batched(_square, [3, 1, 2]) == [9, 1, 4]

    def test_pool_ordered(self, pool2):
        items = list(range(33))
        assert pool2.map_batched(_square, items) == [x * x for x in items]

    def test_empty(self, pool2):
        assert pool2.map_batched(_square, []) == []

    def test_more_chunks_than_items(self, pool2):
        assert pool2.map_batched(_square, [1, 2], chunks=8) == [1, 4]

    def test_task_exception_propagates(self, pool2):
        with pytest.raises(ValueError, match="task 1 failed"):
            pool2.map_batched(_raise_value_error, [1, 5])

    def test_crash_raises_and_recovers(self):
        with PoolBackend(2) as backend:
            with pytest.raises(WorkerCrashError):
                backend.map_batched(_exit_hard, [1, 2, 3, 4])
            assert backend.map_batched(_square, [4]) == [16]

    def test_coalesces_submissions(self, pool2):
        # 32 items on 2 workers: at most 2 distinct worker pids, i.e.
        # one chunk per worker, not one submission per item.
        pids = set(pool2.map_batched(_pid, list(range(32))))
        assert len(pids) <= 2


# ---------------------------------------------------------------------------
# Affinity lanes: run_on pins work to one long-lived process
# ---------------------------------------------------------------------------


class TestAffinityLanes:
    def test_run_on_pins_process(self):
        with PoolBackend(2) as backend:
            assert backend.lane_count == 2
            first = {lane: backend.run_on(lane, _pid, None) for lane in (0, 1)}
            again = {lane: backend.run_on(lane, _pid, None) for lane in (0, 1)}
            assert first == again  # residency-capable: same pid per lane
            assert first[0] != first[1]  # lanes are distinct processes

    def test_lane_out_of_range(self, pool2):
        with pytest.raises(ValueError):
            pool2.run_on(99, _square, 2)

    def test_lane_crash_respawns_cold(self):
        with PoolBackend(2) as backend:
            before = backend.run_on(0, _pid, None)
            with pytest.raises(WorkerCrashError):
                backend.run_on(0, _exit_hard, None)
            after = backend.run_on(0, _pid, None)
            assert after != before  # fresh process: residency is gone

    def test_lane_crash_does_not_poison_other_lanes(self):
        with PoolBackend(2) as backend:
            keep = backend.run_on(1, _pid, None)
            with pytest.raises(WorkerCrashError):
                backend.run_on(0, _exit_hard, None)
            assert backend.run_on(1, _pid, None) == keep

    def test_serial_lane_api(self):
        backend = SerialBackend()
        assert backend.lane_count == 1
        assert backend.run_on(0, _square, 3) == 9
        with pytest.raises(ValueError):
            backend.run_on(1, _square, 3)
        with backend.lane_lock(0):
            pass


# ---------------------------------------------------------------------------
# Zero-copy output arenas
# ---------------------------------------------------------------------------


def _pack_arange(arena):
    arr = np.arange(32, dtype=np.float64).reshape(8, 4)
    return arena.pack([arr])[0]


class TestArena:
    def test_pack_read_roundtrip(self):
        from repro.parallel.pool import ARENA_ALIGN, ArenaHandle

        arena = ArenaHandle.allocate(4096)
        try:
            a = np.arange(12, dtype=np.float64).reshape(3, 4)
            b = np.arange(7, dtype=np.int32)
            refs = arena.pack([a, b])
            assert all(ref.offset % ARENA_ALIGN == 0 for ref in refs)
            np.testing.assert_array_equal(arena.read(refs[0]), a)
            np.testing.assert_array_equal(arena.read(refs[1]), b)
            assert arena.read(refs[0]).dtype == a.dtype
        finally:
            arena.unlink()

    def test_overflow_returns_none(self):
        from repro.parallel.pool import ArenaHandle

        arena = ArenaHandle.allocate(128)
        try:
            assert arena.pack([np.zeros(1024, dtype=np.float64)]) is None
        finally:
            arena.unlink()

    def test_worker_packs_parent_reads(self):
        from repro.parallel.pool import ArenaHandle

        arena = ArenaHandle.allocate(4096)
        try:
            with PoolBackend(1) as backend:
                with backend.lane_lock(0):
                    ref = backend.run_on(0, _pack_arange, arena)
                    out = np.array(arena.read(ref))
            np.testing.assert_array_equal(
                out, np.arange(32, dtype=np.float64).reshape(8, 4)
            )
        finally:
            arena.unlink()


# ---------------------------------------------------------------------------
# Shared-segment lifecycle: nothing strands /dev/shm, even across crashes
# ---------------------------------------------------------------------------


class TestSegmentAudit:
    def test_create_and_unlink_tracked(self):
        from repro.parallel.pool import live_created_segments

        handle = SharedArray.create(np.ones(8))
        assert handle.name in live_created_segments()
        handle.unlink()
        assert handle.name not in live_created_segments()

    def test_audit_unlinks_stranded_segments(self):
        from repro.parallel.pool import (
            audit_shared_segments,
            live_created_segments,
        )

        SharedArray.create(np.ones(16))  # deliberately not unlinked
        assert audit_shared_segments() >= 1
        assert live_created_segments() == ()
        # Idempotent once clean.
        assert audit_shared_segments() == 0

    def test_worker_crash_strands_nothing(self, water_600):
        """Regression (ISSUE 9): a WorkerCrashError mid-map must not
        strand the shared input segments the parent published."""
        from repro.parallel.pool import live_created_segments, shared_inputs

        before = set(live_created_segments())
        with PoolBackend(2) as backend:
            with pytest.raises(WorkerCrashError):
                with shared_inputs(
                    backend, positions=water_600.positions
                ) as handles:
                    assert set(live_created_segments()) > before
                    backend.map(_exit_hard, [1, 2])
        assert set(live_created_segments()) == before

    def test_arena_unlink_clears_registry(self):
        from repro.parallel.pool import ArenaHandle, live_created_segments

        arena = ArenaHandle.allocate(256)
        name = arena.data.name
        assert name in live_created_segments()
        arena.unlink()
        assert name not in live_created_segments()
