"""MPI/RDMA cost models, SimComm functional semantics, collectives."""

import numpy as np
import pytest

from repro.hw.params import DEFAULT_PARAMS
from repro.parallel.collectives import step_comm_seconds
from repro.parallel.mpi_sim import (
    SimComm,
    allreduce_seconds,
    alltoall_seconds,
    mpi_message_seconds,
)
from repro.parallel.rdma import rdma_message_seconds


class TestMessageModel:
    def test_latency_plus_bandwidth(self):
        t0 = mpi_message_seconds(0)
        t1 = mpi_message_seconds(10**6)
        assert t1 > t0 == DEFAULT_PARAMS.mpi_latency_s

    def test_monotone_in_size(self):
        sizes = [0, 64, 4096, 10**6]
        times = [mpi_message_seconds(s) for s in sizes]
        assert times == sorted(times)


class TestAllreduce:
    def test_log_scaling(self):
        t64 = allreduce_seconds(1024, 64)
        t128 = allreduce_seconds(1024, 128)
        assert t128 > t64
        assert t128 / t64 == pytest.approx(np.log2(128) / np.log2(64), rel=0.01)

    def test_single_rank_free(self):
        assert allreduce_seconds(1024, 1) == 0.0

    def test_rdma_collectives_cheaper(self):
        mpi = allreduce_seconds(1024, 512, mpi_message_seconds)
        rdma = allreduce_seconds(1024, 512, rdma_message_seconds)
        assert rdma < mpi / 3

    def test_explicit_hop_override(self):
        base = allreduce_seconds(1024, 64, collective_hop_s=0.0)
        with_hop = allreduce_seconds(1024, 64, collective_hop_s=1e-3)
        steps = 2 * np.ceil(np.log2(64))
        assert with_hop - base == pytest.approx(steps * 1e-3)

    def test_validation(self):
        with pytest.raises(ValueError):
            allreduce_seconds(1024, 0)


class TestAlltoall:
    def test_picks_cheaper_algorithm(self):
        # Tiny payload: Bruck (log rounds) must beat pairwise (P-1 rounds).
        small = alltoall_seconds(8, 256)
        pairwise_small = 255 * mpi_message_seconds(8)
        assert small < pairwise_small
        # Huge payload: pairwise (bandwidth optimal) must beat Bruck.
        big = alltoall_seconds(10**7, 8)
        bruck_big = 3 * mpi_message_seconds(10**7 * 4)
        assert big < bruck_big

    def test_single_rank_free(self):
        assert alltoall_seconds(100, 1) == 0.0


class TestSimComm:
    def test_send_recv_roundtrip(self):
        comm = SimComm(4)
        data = np.arange(10.0)
        comm.send(0, 2, data, tag=7)
        out = comm.recv(0, 2, tag=7)
        np.testing.assert_array_equal(out, data)
        assert comm.stats.n_messages == 1
        assert comm.stats.bytes == data.nbytes

    def test_message_isolation_by_tag(self):
        comm = SimComm(2)
        comm.send(0, 1, np.array([1.0]), tag=0)
        with pytest.raises(LookupError):
            comm.recv(0, 1, tag=5)

    def test_fifo_order(self):
        comm = SimComm(2)
        comm.send(0, 1, np.array([1.0]))
        comm.send(0, 1, np.array([2.0]))
        assert comm.recv(0, 1)[0] == 1.0
        assert comm.recv(0, 1)[0] == 2.0

    def test_send_copies_payload(self):
        comm = SimComm(2)
        data = np.array([1.0, 2.0])
        comm.send(0, 1, data)
        data[0] = 99.0
        assert comm.recv(0, 1)[0] == 1.0

    def test_allreduce_sum_functional(self):
        comm = SimComm(3)
        parts = [np.full(4, r, dtype=float) for r in range(3)]
        total = comm.allreduce_sum(parts)
        np.testing.assert_array_equal(total, np.full(4, 3.0))
        assert comm.stats.seconds > 0

    def test_rank_validation(self):
        comm = SimComm(2)
        with pytest.raises(ValueError):
            comm.send(0, 5, np.array([1.0]))
        with pytest.raises(ValueError):
            SimComm(0)


class TestStepComm:
    def test_scaling_with_ranks(self):
        c64 = step_comm_seconds(48000, 64, 7.8, 1.0)
        c512 = step_comm_seconds(48000, 512, 7.8, 1.0)
        assert c512.energy_seconds > c64.energy_seconds

    def test_components_nonnegative(self):
        c = step_comm_seconds(10000, 16, 5.0, 1.0)
        assert c.halo_seconds >= 0 and c.pme_seconds >= 0
        assert c.total == pytest.approx(
            c.halo_seconds + c.pme_seconds + c.energy_seconds
        )
