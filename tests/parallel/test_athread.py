"""athread work partitioning: coverage, balance, spawn semantics."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.parallel.athread import block_partition, spawn, weighted_partition


class TestBlockPartition:
    def test_covers_exactly(self):
        parts = block_partition(100, 7)
        assert parts[0][0] == 0 and parts[-1][1] == 100
        sizes = [hi - lo for lo, hi in parts]
        assert sum(sizes) == 100
        assert max(sizes) - min(sizes) <= 1

    def test_more_workers_than_items(self):
        parts = block_partition(3, 8)
        sizes = [hi - lo for lo, hi in parts]
        assert sum(sizes) == 3
        assert all(s in (0, 1) for s in sizes)

    def test_validation(self):
        with pytest.raises(ValueError):
            block_partition(10, 0)
        with pytest.raises(ValueError):
            block_partition(-1, 4)

    @settings(max_examples=40, deadline=None)
    @given(n=st.integers(0, 500), w=st.integers(1, 64))
    def test_partition_properties(self, n, w):
        parts = block_partition(n, w)
        assert len(parts) == w
        covered = []
        for lo, hi in parts:
            assert lo <= hi
            covered.extend(range(lo, hi))
        assert covered == list(range(n))


class TestWeightedPartition:
    def test_balances_skewed_weights(self):
        weights = [100] + [1] * 99
        parts = weighted_partition(weights, 4)
        w = np.asarray(weights, dtype=float)
        loads = [w[lo:hi].sum() for lo, hi in parts]
        # The heavy item dominates; no worker should hold more than it + slack.
        assert max(loads) <= 100 + 30

    def test_rejects_negative_weights(self):
        with pytest.raises(ValueError):
            weighted_partition([1, -1], 2)

    @settings(max_examples=30, deadline=None)
    @given(
        weights=st.lists(st.floats(0, 100, allow_nan=False), min_size=1, max_size=200),
        w=st.integers(1, 16),
    )
    def test_contiguous_cover_property(self, weights, w):
        parts = weighted_partition(weights, w)
        assert parts[0][0] == 0 and parts[-1][1] == len(weights)
        for (a, b), (c, d) in zip(parts, parts[1:]):
            assert b == c


class TestSpawn:
    def test_kernel_sees_disjoint_ranges(self):
        seen = []
        report = spawn(lambda cpe, lo, hi: seen.append((cpe, lo, hi)), 640)
        assert len(report.results) == 64
        total = sum(hi - lo for _, lo, hi in seen)
        assert total == 640
        assert report.imbalance == pytest.approx(1.0)

    def test_weighted_spawn(self):
        weights = np.ones(128)
        weights[:4] = 100.0
        report = spawn(lambda c, lo, hi: hi - lo, 128, weights=weights)
        assert report.critical_work <= 130
        assert report.imbalance < 64

    def test_weight_length_mismatch(self):
        with pytest.raises(ValueError):
            spawn(lambda c, lo, hi: None, 10, weights=[1.0] * 9)
