"""Smoke tests for every ``repro`` subcommand on tiny inputs.

These are cheap end-to-end checks that each command parses its flags,
runs its full code path, prints something sensible, and exits 0 — the
regressions unit tests miss (broken imports in lazy command bodies,
renamed flags, output-formatting crashes).

Sizes: water at bulk density needs a box edge ≥ 2×r_list, so commands
with a configurable cutoff run at n=300/r_cut=0.45, and the
fixed-cutoff paper figures (ladder/overall at 1.0 nm) at n=1500.
"""

from __future__ import annotations

import json
import threading
import time
from pathlib import Path

import pytest

import repro
from repro.cli import main

TINY = ["-n", "300", "--rcut", "0.45"]


class TestVersion:
    def test_version_flag_matches_package(self, capsys):
        with pytest.raises(SystemExit) as exc:
            main(["--version"])
        assert exc.value.code == 0
        out = capsys.readouterr().out
        assert out.strip() == f"repro {repro.__version__}"

    def test_version_matches_pyproject(self):
        try:
            import tomllib
        except ModuleNotFoundError:  # pragma: no cover - py<3.11
            pytest.skip("tomllib unavailable")
        pyproject = (
            Path(repro.__file__).resolve().parents[2] / "pyproject.toml"
        )
        meta = tomllib.loads(pyproject.read_text())
        assert meta["project"]["version"] == repro.__version__


class TestRunCommands:
    def test_run(self, capsys):
        assert main(["run", *TINY, "-s", "2"]) == 0
        out = capsys.readouterr().out
        assert "E_total" in out
        assert "modelled chip time" in out

    def test_run_with_checkpoint(self, capsys, tmp_path):
        ckpt = str(tmp_path / "state.ckpt")
        assert main(
            ["run", *TINY, "-s", "2", "--checkpoint-every", "1",
             "--checkpoint-path", ckpt]
        ) == 0
        assert Path(ckpt).exists()
        capsys.readouterr()

    def test_trace(self, capsys, tmp_path):
        out_path = str(tmp_path / "trace.json")
        assert main(["trace", *TINY, "-s", "2", "--out", out_path]) == 0
        doc = json.loads(Path(out_path).read_text())
        assert doc["traceEvents"]
        capsys.readouterr()

    def test_ranks(self, capsys):
        assert main(["ranks", "-r", "2", *TINY, "-s", "2"]) == 0
        out = capsys.readouterr().out
        assert "rank" in out.lower()


class TestFigureCommands:
    def test_ladder(self, capsys):
        assert main(["ladder", "-n", "1500"]) == 0
        out = capsys.readouterr().out
        assert "Mark" in out and "ladder" in out

    def test_overall(self, capsys):
        assert main(["overall", "-n", "1500"]) == 0
        capsys.readouterr()

    def test_scaling(self, capsys):
        assert main(
            ["scaling", "--strong-total", "24000", "--weak-per-cg", "6000"]
        ) == 0
        out = capsys.readouterr().out
        assert "strong scaling" in out
        assert "weak scaling" in out

    def test_table2(self, capsys):
        assert main(["table2"]) == 0
        out = capsys.readouterr().out
        assert "GB/s" in out or "bandwidth" in out.lower()

    def test_ttf(self, capsys):
        assert main(["ttf"]) == 0
        capsys.readouterr()


class TestServeCommands:
    def test_serve_requires_address(self, capsys):
        assert main(["serve"]) == 2
        assert "need --socket" in capsys.readouterr().err

    def test_submit_requires_address(self, capsys):
        assert main(["submit"]) == 2
        assert "need --socket" in capsys.readouterr().err

    def test_submit_without_server_is_connection_error(self, capsys, tmp_path):
        missing = str(tmp_path / "nope.sock")
        assert main(["submit", "--socket", missing, "--op", "ping"]) == 3
        assert "cannot reach" in capsys.readouterr().err

    def test_serve_submit_drain_round_trip(self, capsys, tmp_path):
        # Full CLI session: `repro serve` in a thread, `repro submit`
        # against it, then a client-driven drain shuts it down cleanly.
        sock = str(tmp_path / "serve.sock")
        rc = {}

        def server():
            rc["serve"] = main(
                ["serve", "--socket", sock, "--max-depth", "4"]
            )

        thread = threading.Thread(target=server)
        thread.start()
        try:
            deadline = time.monotonic() + 30
            while not Path(sock).exists():
                assert time.monotonic() < deadline, "service never came up"
                time.sleep(0.02)
            assert main(["submit", "--socket", sock, "--op", "ping"]) == 0
            assert main(["submit", "--socket", sock, *TINY]) == 0
            assert main(["submit", "--socket", sock, "--op", "stats"]) == 0
            assert main(["submit", "--socket", sock, "--op", "drain"]) == 0
        finally:
            thread.join(timeout=30)
        assert not thread.is_alive()
        assert rc["serve"] == 0
        out = capsys.readouterr().out
        assert "listening on" in out
        assert "job 1 ok" in out
        assert "drained: 1 completed" in out


class TestFleetCommands:
    def test_fleet_requires_address(self, capsys):
        assert main(["fleet"]) == 2
        assert "need --socket" in capsys.readouterr().err

    def test_fleet_worker_requires_address(self, capsys):
        assert main(
            ["fleet-worker", "--router", "r.sock", "--name", "w0"]
        ) == 2
        assert "need --socket" in capsys.readouterr().err

    def test_fleet_round_trip_with_spawned_workers(self, capsys, tmp_path):
        # Full fleet session through the CLI alone: `repro fleet
        # --spawn-workers 2` in a thread (workers are real
        # `repro fleet-worker` subprocesses), `repro submit --router`
        # against it, then a client-driven drain.
        sock = str(tmp_path / "router.sock")
        rc = {}

        def router():
            rc["fleet"] = main(
                ["fleet", "--socket", sock, "--spawn-workers", "2"]
            )

        thread = threading.Thread(target=router)
        thread.start()
        try:
            retry = ["--connect-retries", "100", "--connect-backoff", "0.1"]
            assert main(
                ["submit", "--router", sock, *retry, "--op", "ping"]
            ) == 0
            assert main(["submit", "--router", sock, *TINY]) == 0
            assert main(["submit", "--router", sock, "--op", "fleet"]) == 0
            assert main(["submit", "--router", sock, "--op", "stats"]) == 0
            assert main(["submit", "--router", sock, "--op", "drain"]) == 0
        finally:
            thread.join(timeout=60)
        assert not thread.is_alive()
        assert rc["fleet"] == 0
        out = capsys.readouterr().out
        assert "router listening on" in out
        assert "job 1 ok" in out
        assert '"ring"' in out  # the --op fleet membership dump
        assert "drained: 1 completed" in out


class TestScenarioCommands:
    def test_scenarios_list(self, capsys):
        assert main(["scenarios"]) == 0
        out = capsys.readouterr().out
        assert "water" in out and "ionic" in out
        assert "rung" in out and "elec" in out

    def test_scenarios_audit_clean(self, capsys):
        assert main(["scenarios", "--audit"]) == 0
        out = capsys.readouterr().out
        assert '"drift": []' in out
        assert "audit ok" in out

    def test_run_with_spec(self, capsys):
        assert main(
            ["run", "--spec", "water n=300 rcut=0.45 ensemble=nvt",
             "-s", "2"]
        ) == 0
        out = capsys.readouterr().out
        assert "scenario: water@spc n=300 ensemble=nvt" in out
        assert "modelled chip time" in out

    def test_run_with_invalid_spec(self, capsys):
        assert main(["run", "--spec", "ljmix elec=pme", "-s", "1"]) == 2
        assert "charged system" in capsys.readouterr().err

    def test_campaign_dry_run(self, capsys):
        assert main(
            ["campaign", "ljmix,water elec=rf,pme n=600 rcut=0.45",
             "--dry-run"]
        ) == 0
        out = capsys.readouterr().out
        assert "4 cells (3 runnable)" in out
        assert "skipped_conflict" in out

    def test_campaign_bad_matrix(self, capsys):
        assert main(["campaign", "n=300", "--dry-run"]) == 2
        assert "campaign:" in capsys.readouterr().err

    def test_campaign_needs_address(self, capsys):
        assert main(["campaign", "water"]) == 2
        assert "need --socket" in capsys.readouterr().err

    def test_campaign_self_serve_writes_report(self, capsys, tmp_path):
        # Acceptance path: a >= 12-cell matrix end-to-end through the
        # serve tier (in-process), with a JSON report on disk.
        report_path = tmp_path / "report.json"
        matrix = ("water@spc,water@spce n=600,900 elec=rf,pme "
                  "rcut=0.45 seed=2019,7")
        assert main(
            ["campaign", matrix, "--self-serve",
             "--out", str(report_path)]
        ) == 0
        out = capsys.readouterr().out
        assert "16 cells" in out
        report = json.loads(report_path.read_text())
        assert report["n_cells"] == 16
        assert report["counts"] == {"ok": 16}
        concrete = [c["concrete"] for c in report["cells"]]
        assert len(set(concrete)) == 16

    def test_submit_scenario_spec_round_trip(self, capsys, tmp_path):
        sock = str(tmp_path / "scen.sock")
        rc = {}

        def server():
            rc["serve"] = main(["serve", "--socket", sock])

        thread = threading.Thread(target=server)
        thread.start()
        try:
            deadline = time.monotonic() + 30
            while not Path(sock).exists():
                assert time.monotonic() < deadline
                time.sleep(0.02)
            assert main(
                ["submit", "--socket", sock,
                 "--spec", "water n=600 rcut=0.45 ensemble=nvt"]
            ) == 0
            # Invalid spec: rejected at admission, names the rule.
            assert main(
                ["submit", "--socket", sock, "--spec", "ljmix elec=pme"]
            ) == 2
            assert main(["submit", "--socket", sock, "--op", "drain"]) == 0
        finally:
            thread.join(timeout=30)
        assert rc["serve"] == 0
        captured = capsys.readouterr()
        assert "job 1 ok" in captured.out
        assert "depends_on" in captured.err
