"""Shared fixtures: small systems and pair lists, built once per session.

Sizes are chosen so the whole suite stays fast while every cutoff still
satisfies the minimum-image requirement (water at bulk density needs
~250 particles per nm of box edge cubed).
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.md.nonbonded import NonbondedParams
from repro.md.pairlist import build_pair_list
from repro.md.water import build_lj_fluid, build_water_system


@pytest.fixture(scope="session")
def lj_small():
    """200-particle LJ fluid (fast tests)."""
    return build_lj_fluid(200, seed=11)


@pytest.fixture(scope="session")
def water_small():
    """~750-particle water box; supports cutoffs up to ~0.9 nm."""
    return build_water_system(750, seed=11)


@pytest.fixture(scope="session")
def water_medium():
    """~3000-particle water box; supports the paper's 1.0 nm cutoff."""
    return build_water_system(3000, seed=7)


@pytest.fixture(scope="session")
def nb_lj():
    return NonbondedParams(r_cut=0.9, r_list=1.0, coulomb_mode="none")


@pytest.fixture(scope="session")
def nb_water_small():
    return NonbondedParams(r_cut=0.8, r_list=0.9, coulomb_mode="rf")


@pytest.fixture(scope="session")
def nb_water_paper():
    """The paper's Table 3 settings (rlist 1.0, PME-style real space)."""
    return NonbondedParams(r_cut=1.0, r_list=1.0, coulomb_mode="rf")


@pytest.fixture(scope="session")
def plist_water_small(water_small, nb_water_small):
    return build_pair_list(water_small, nb_water_small.r_list)


@pytest.fixture(scope="session")
def plist_water_medium(water_medium, nb_water_paper):
    return build_pair_list(water_medium, nb_water_paper.r_list)


@pytest.fixture(scope="session")
def plist_lj(lj_small, nb_lj):
    return build_pair_list(lj_small, nb_lj.r_list)


@pytest.fixture()
def rng():
    return np.random.default_rng(20190722)
