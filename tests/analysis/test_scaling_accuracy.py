"""Scalability model (Fig. 12), accuracy experiment (Fig. 13), printers."""

import pytest

from repro.analysis.accuracy import run_accuracy_experiment
from repro.analysis.figures import (
    PAPER_FIG12_STRONG,
    PAPER_FIG12_WEAK,
    print_efficiency_curves,
    print_fractions,
    print_speedup_bars,
    print_table2,
)
from repro.analysis.scaling import (
    ReferenceTimings,
    model_step_seconds,
    strong_scaling_curve,
    weak_scaling_curve,
)
from repro.md.nonbonded import NonbondedParams
from repro.md.water import build_water_system


@pytest.fixture(scope="module")
def ref_timings():
    nb = NonbondedParams(r_cut=0.8, r_list=0.9, coulomb_mode="rf")
    return (
        ReferenceTimings.measure(
            lambda n: build_water_system(n, seed=31), 3000, nb
        ),
        nb,
    )


class TestScalingModel:
    def test_reference_measurement(self, ref_timings):
        ref, _ = ref_timings
        assert ref.pair_seconds > 0
        assert ref.particle_seconds > 0

    def test_strong_efficiency_decreasing(self, ref_timings):
        ref, nb = ref_timings
        curve = strong_scaling_curve(ref, 48000, nonbonded=nb)
        eff = curve.strong_efficiency()
        values = [eff[n] for n in sorted(eff)]
        assert values[0] == pytest.approx(1.0)
        assert all(b <= a + 1e-9 for a, b in zip(values, values[1:]))
        # Paper shape: still around ~0.3-0.6 at 512 CGs, not collapsed.
        assert 0.15 < eff[512] < 0.7

    def test_weak_efficiency_tracks_paper(self, ref_timings):
        ref, nb = ref_timings
        curve = weak_scaling_curve(ref, 10000, nonbonded=nb)
        eff = curve.weak_efficiency()
        for n, paper in PAPER_FIG12_WEAK.items():
            assert eff[n] == pytest.approx(paper, abs=0.12)

    def test_strong_efficiency_tracks_paper_shape(self, ref_timings):
        ref, nb = ref_timings
        eff = strong_scaling_curve(ref, 48000, nonbonded=nb).strong_efficiency()
        for n in (4, 8, 16, 32, 64):
            assert eff[n] == pytest.approx(PAPER_FIG12_STRONG[n], abs=0.15)

    def test_speedups_relative_to_baseline(self, ref_timings):
        ref, nb = ref_timings
        curve = strong_scaling_curve(ref, 48000, nonbonded=nb)
        sp = curve.speedups()
        assert sp[4] == pytest.approx(1.0)
        assert sp[512] > sp[4]

    def test_model_step_validation(self, ref_timings):
        ref, nb = ref_timings
        with pytest.raises(ValueError):
            model_step_seconds(ref, 48000, 0, nb)

    def test_compute_shrinks_comm_persists(self, ref_timings):
        ref, nb = ref_timings
        p64 = model_step_seconds(ref, 48000, 64, nb)
        p512 = model_step_seconds(ref, 48000, 512, nb)
        assert p512.compute_seconds < p64.compute_seconds
        # Communication does not shrink with the domain: it ends up
        # dominating the 512-CG step (the strong-scaling limiter).
        assert p512.comm_seconds > p512.compute_seconds


class TestAccuracyExperiment:
    @pytest.fixture(scope="class")
    def result(self):
        return run_accuracy_experiment(
            n_particles=300, n_steps=300, report_interval=50,
            minimize_steps=40,
        )

    def test_deviation_bounded(self, result):
        """Fig. 13's claim: mixed precision stays within the thermal
        fluctuation band of the reference."""
        assert result.energy_deviation() < 6.0
        assert result.mean_energy_gap_relative() < 0.05

    def test_temperature_gap_small(self, result):
        assert result.temperature_gap() < 30.0

    def test_both_runs_recorded(self, result):
        assert len(result.reference.frames) == len(result.mixed.frames) == 6

    def test_drifts_comparable(self, result):
        d_ref, d_mix = result.drifts()
        # Mixed precision must not drift grossly faster than the reference.
        assert abs(d_mix) < 10 * max(abs(d_ref), 1e-3)


class TestPrinters:
    def test_table2_output(self):
        out = print_table2([(8, 0.99), (128, 15.77)])
        assert "Table 2" in out and "0.99" in out

    def test_speedup_bars(self):
        out = print_speedup_bars({"Mark": 55.0}, {"Mark": 61.0}, "Fig 8")
        assert "Mark" in out and "61" in out

    def test_fractions(self):
        out = print_fractions({"Force": 0.9}, {"Force": 0.955}, "Table 1")
        assert "90.0%" in out and "95.5%" in out

    def test_efficiency_curves(self):
        out = print_efficiency_curves({4: 1.0, 8: 0.9}, {4: 1.0, 8: 0.97}, "Fig 12")
        assert "0.97" in out
