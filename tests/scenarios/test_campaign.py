"""Campaign mechanics: matrix expansion, skip-on-conflict planning,
duplicate collapse, and the report shape (client faked; the live
serve round-trip lives in tests/serve/test_scenario_jobs.py and the
CLI test)."""

import json

import pytest

from repro.scenarios.campaign import (
    CELL_DUPLICATE,
    CELL_FAILED,
    CELL_OK,
    CELL_SKIPPED,
    CampaignPlan,
    MatrixError,
    expand_matrix,
    plan_campaign,
    run_campaign,
)


class TestExpandMatrix:
    def test_single_cell(self):
        assert expand_matrix("water") == ["water"]

    def test_cross_product(self):
        cells = expand_matrix("water@spc,water@spce n=600,900 elec=rf,pme")
        assert len(cells) == 8
        assert "water@spc n=600 elec=rf" in cells
        assert "water@spce n=900 elec=pme" in cells

    def test_head_axis_order_preserved(self):
        cells = expand_matrix("ljmix,water n=300")
        assert cells[0].startswith("ljmix")
        assert cells[-1].startswith("water")

    @pytest.mark.parametrize("bad", [
        "", "   ", "n=300", "water n=", "water =300", "water n",
    ])
    def test_malformed_matrix(self, bad):
        with pytest.raises(MatrixError):
            expand_matrix(bad)


class TestPlan:
    def test_skip_on_conflict(self):
        plan = plan_campaign("ljmix,water elec=rf,pme n=600 rcut=0.45")
        by_status = {}
        for cell in plan.cells:
            by_status.setdefault(cell.status, []).append(cell)
        # ljmix+pme violates the charged-system dependency: reported
        # skip, not an expansion error.
        assert len(by_status[CELL_SKIPPED]) == 1
        skipped = by_status[CELL_SKIPPED][0]
        assert "charged system" in skipped.reason
        assert len(plan.runnable) == 3

    def test_bad_cell_is_matrix_error(self):
        # Unknown names/values are matrix bugs, not swept corners.
        with pytest.raises(MatrixError, match="bad matrix cell"):
            plan_campaign("water ensemble=npt,nve")

    def test_duplicates_collapse(self):
        # Distinct cells stay distinct...
        plan = plan_campaign("water seed=2019,7")
        assert all(c.status == CELL_OK for c in plan.cells)
        # ...but explicit default == omitted default collapses.
        plan = plan_campaign("water elec=rf rung=fused,fused")
        dup = [c for c in plan.cells if c.status == CELL_DUPLICATE]
        assert len(dup) == 1
        assert dup[0].duplicate_of == 0
        assert len(plan.runnable) == 1

    def test_counts(self):
        plan = plan_campaign("ljmix,water elec=rf,pme n=600 rcut=0.45")
        counts = plan.counts()
        assert counts[CELL_OK] == 3
        assert counts[CELL_SKIPPED] == 1


class _FakeResult:
    def __init__(self, ok=True, payload=None):
        self.ok = ok
        self.executed = True
        self.result_code = None
        self.queue_seconds = 0.0
        self.execute_seconds = 0.0
        self.payload = payload or {"energy": 1.0, "extra": object()}
        if not ok:
            self.error = type(
                "E", (), {"code": "execution_failed", "message": "boom"}
            )()


class _FakeClient:
    """Duck-typed ServeClient: records requests, serves canned results."""

    def __init__(self, fail_jobs=()):
        self.submitted = []
        self.fail_jobs = set(fail_jobs)

    def submit(self, request, wait=True):
        request.validate()
        self.submitted.append(request)
        return len(self.submitted)

    def wait(self, job_id):
        return _FakeResult(ok=job_id not in self.fail_jobs)


class TestRunCampaign:
    def test_report_shape_and_submission(self):
        client = _FakeClient()
        report = run_campaign(
            client, "water elec=rf,pme n=600 rcut=0.45", kind="kernel"
        )
        assert report["n_cells"] == 2
        assert report["n_submitted"] == 2
        assert report["counts"] == {CELL_OK: 2}
        assert all(r.scenario for r in client.submitted)
        assert all(r.kind == "kernel" for r in client.submitted)
        # Payload digest keeps known keys only and stays JSON-able.
        json.dumps(report)
        payload = report["cells"][0]["result"]["payload"]
        assert payload == {"energy": 1.0}

    def test_failed_cell_reported(self):
        client = _FakeClient(fail_jobs={1})
        report = run_campaign(
            client, "water elec=rf,pme n=600 rcut=0.45"
        )
        statuses = [c["status"] for c in report["cells"]]
        assert statuses.count(CELL_FAILED) == 1
        failed = next(
            c for c in report["cells"] if c["status"] == CELL_FAILED
        )
        assert "execution_failed" in failed["reason"]

    def test_duplicates_submit_once_share_result(self):
        client = _FakeClient()
        report = run_campaign(client, "water rung=fused,fused")
        assert report["n_submitted"] == 1
        assert len(client.submitted) == 1
        cells = report["cells"]
        assert cells[1]["status"] == CELL_DUPLICATE
        assert cells[1]["result"] == cells[0]["result"]

    def test_md_kind_carries_steps(self):
        client = _FakeClient()
        report = run_campaign(client, "water n=600 rcut=0.45",
                              kind="md", steps=3)
        assert client.submitted[0].kind == "md"
        assert client.submitted[0].steps == 3
        assert report["steps"] == 3

    def test_runnable_property(self):
        plan = CampaignPlan(matrix="x")
        assert plan.runnable == []
