"""Concretizer semantics: defaults-fill, dependency propagation,
conflict messages, and spec -> string -> spec round-trips."""

import pytest

from repro.scenarios.spec import (
    SYSTEM_VARIANTS,
    VARIANTS,
    SpecConflictError,
    SpecDependencyError,
    SpecError,
    SpecParseError,
    UnknownVariantError,
    concretize_text,
    parse_spec,
    spec_from_dict,
)


class TestParse:
    def test_head_only(self):
        spec = parse_spec("water")
        assert spec.family == "water"
        assert spec.version is None
        assert not spec.concrete

    def test_head_with_version_and_variants(self):
        spec = parse_spec("water@spce n=1500 ensemble=nvt elec=rf")
        assert spec.family == "water"
        assert spec.version == "spce"
        assert spec["n"] == 1500
        assert spec["ensemble"] == "nvt"

    def test_attribute_access(self):
        spec = parse_spec("water n=1500")
        assert spec.n == 1500

    def test_unknown_variant_name(self):
        with pytest.raises(UnknownVariantError, match="unknown variant"):
            parse_spec("water nparticles=1500")

    def test_out_of_domain_value(self):
        with pytest.raises(UnknownVariantError, match="ensemble"):
            parse_spec("water ensemble=npt")

    def test_bad_typed_value(self):
        with pytest.raises(SpecParseError):
            parse_spec("water n=many")

    def test_duplicate_variant(self):
        with pytest.raises(SpecParseError, match="duplicate"):
            parse_spec("water n=100 n=200")

    def test_empty_text(self):
        with pytest.raises(SpecParseError):
            parse_spec("   ")

    def test_unknown_family_surfaces_at_concretize(self):
        with pytest.raises(SpecParseError, match="unknown scenario family"):
            parse_spec("plasma n=100").concretize()

    def test_unknown_version(self):
        with pytest.raises(SpecParseError, match="version"):
            parse_spec("water@tip4p").concretize()


class TestDefaultsFill:
    def test_every_variant_filled(self):
        spec = concretize_text("water")
        for name, variant in VARIANTS.items():
            if variant.families and spec.family not in variant.families:
                continue
            assert spec.get(name) is not None

    def test_water_defaults_match_legacy_request(self):
        # The serve tier's historical water workload: these defaults are
        # load-bearing (bit-identity of water-as-spec vs JobRequest).
        spec = concretize_text("water")
        assert spec.version == "spc"
        assert spec["n"] == 900
        assert spec["seed"] == 2019
        assert spec["rcut"] == pytest.approx(0.9)
        assert spec["temp"] == pytest.approx(300.0)
        assert spec["elec"] == "rf"

    def test_elec_default_tracks_charges(self):
        assert concretize_text("water")["elec"] == "rf"
        assert concretize_text("ionic")["elec"] == "rf"
        assert concretize_text("ljmix")["elec"] == "none"

    def test_temp_default_tracks_family(self):
        assert concretize_text("water")["temp"] == pytest.approx(300.0)
        assert concretize_text("ljmix")["temp"] == pytest.approx(120.0)

    def test_family_scoped_variant_not_filled_elsewhere(self):
        spec = concretize_text("water")
        assert spec.get("ion_frac") is None
        assert concretize_text("ionic")["ion_frac"] == pytest.approx(0.05)

    def test_family_scoped_variant_rejected_elsewhere(self):
        with pytest.raises(SpecError, match="ion_frac"):
            concretize_text("water ion_frac=0.1")


class TestRules:
    def test_pme_needs_charges(self):
        with pytest.raises(SpecDependencyError, match="charged system"):
            concretize_text("ljmix elec=pme")

    def test_pme_needs_capable_rung(self):
        with pytest.raises(SpecDependencyError, match="rung"):
            concretize_text("water elec=pme rung=ori")

    def test_pme_on_capable_rung_ok(self):
        spec = concretize_text("water elec=pme rung=cache")
        assert spec["elec"] == "pme"

    def test_settle_needs_pure_water(self):
        with pytest.raises(SpecConflictError, match="pure 3-site water"):
            concretize_text("ionic constraints=settle")

    def test_settle_on_water_ok(self):
        spec = concretize_text("water constraints=settle")
        assert spec["constraints"] == "settle"

    def test_constraints_need_constrained_topology(self):
        with pytest.raises(SpecError, match="constraint"):
            concretize_text("ljmix constraints=shake")

    def test_cross_platform_needs_ori_rung(self):
        with pytest.raises(SpecConflictError, match="sw26010"):
            concretize_text("water platform=knl")
        spec = concretize_text("water platform=knl rung=ori")
        assert spec["platform"] == "knl"

    def test_error_names_the_rule(self):
        with pytest.raises(SpecDependencyError, match=r"depends_on\("):
            concretize_text("ljmix elec=pme")
        with pytest.raises(SpecConflictError, match=r"conflicts\("):
            concretize_text("ionic constraints=settle")

    def test_box_edge_check(self):
        with pytest.raises(SpecConflictError, match="box"):
            concretize_text("water n=300")  # rcut=0.9 box too small
        concretize_text("water n=300 rcut=0.45")  # fits

    def test_value_range_checks(self):
        with pytest.raises(SpecError):
            concretize_text("water rcut=-1")
        with pytest.raises(SpecError):
            concretize_text("water temp=0")
        with pytest.raises(SpecError):
            concretize_text("ionic ion_frac=0.9")
        with pytest.raises(SpecError):
            concretize_text("water n=1")


class TestRoundTrip:
    def test_concrete_round_trip_is_identity(self):
        spec = concretize_text("water@spce n=1500 ensemble=nvt elec=rf")
        again = parse_spec(spec.to_string()).concretize()
        assert again == spec
        assert again.to_string() == spec.to_string()

    def test_order_insensitive(self):
        a = concretize_text("water@spce n=1500 ensemble=nvt elec=rf")
        b = concretize_text("water@spce elec=rf ensemble=nvt n=1500")
        assert a == b
        assert hash(a) == hash(b)

    def test_explicit_defaults_collapse(self):
        a = concretize_text("water")
        b = concretize_text("water@spc n=900 elec=rf seed=2019")
        assert a.to_string() == b.to_string()

    def test_abstract_vs_concrete_not_equal(self):
        abstract = parse_spec("water")
        assert abstract != abstract.concretize()

    def test_system_canonical_subsets_variants(self):
        spec = concretize_text("water n=600 rcut=0.45 rung=cache")
        canon = spec.system_canonical()
        assert canon.startswith("water@spc")
        assert "n=600" in canon
        assert "rung" not in canon  # strategy is not system identity
        for name in SYSTEM_VARIANTS:
            if VARIANTS[name].families:
                continue
            assert f"{name}=" in canon

    def test_rung_changes_string_not_system(self):
        a = concretize_text("water n=600 rcut=0.45 rung=cache")
        b = concretize_text("water n=600 rcut=0.45 rung=vec")
        assert a.to_string() != b.to_string()
        assert a.system_canonical() == b.system_canonical()

    def test_spec_from_dict_forms(self):
        text = "water@spce n=1500 ensemble=nvt elec=rf"
        from_text = spec_from_dict({"spec": text})
        exploded = spec_from_dict(
            {"family": "water", "version": "spce",
             "n": 1500, "ensemble": "nvt", "elec": "rf"}
        )
        assert from_text.concretize() == exploded.concretize()

    def test_concretize_text_is_cached(self):
        assert concretize_text("water") is concretize_text("water")
