"""Registry semantics: builders, config derivation, fingerprints, and
the full-matrix audit (the CI drift gate in unit-test form)."""

import numpy as np
import pytest

from repro.core.kernels import ALL_SPECS
from repro.scenarios.registry import (
    FAMILIES,
    RUNG_TO_KERNEL_SPEC,
    RUNG_TO_LEVEL,
    ScenarioFamily,
    audit,
    build_scenario,
    engine_config_for,
    get_family,
    kernel_spec_name_for,
    md_config_for,
    nonbonded_for,
    register_family,
    scenario_fingerprint,
    variant_matrix,
)
from repro.scenarios.spec import SpecParseError, concretize_text


class TestFamilies:
    def test_registered_names(self):
        assert set(FAMILIES) == {"water", "ionic", "ljmix", "solute"}

    def test_get_family_unknown(self):
        with pytest.raises(SpecParseError, match="unknown scenario family"):
            get_family("plasma")

    def test_register_guards_bad_default_version(self):
        with pytest.raises(ValueError, match="default version"):
            register_family(ScenarioFamily(
                name="broken", description="", versions=("a",),
                default_version="b", charged=False, pure_water=False,
                has_constraints=False, min_particles=2, default_n=100,
                default_temperature=100.0, entity_density=10.0,
                atoms_per_entity=1, builder=lambda spec: None,
            ))
        assert "broken" not in FAMILIES


class TestBuilders:
    def test_water_spec_matches_direct_builder(self):
        # Load-bearing bit-identity: the registry path must call the
        # same builder with the same arguments as the legacy serve path.
        from repro.md.nonbonded import NonbondedParams
        from repro.md.water import build_water_system

        system, nb = build_scenario(concretize_text("water"))
        direct = build_water_system(900, seed=2019)
        np.testing.assert_array_equal(system.positions, direct.positions)
        np.testing.assert_array_equal(system.charges, direct.charges)
        assert nb == NonbondedParams(r_cut=0.9, r_list=1.0,
                                     coulomb_mode="rf")

    def test_every_family_version_builds(self):
        for family in FAMILIES.values():
            for version in family.versions:
                spec = concretize_text(
                    f"{family.name}@{version} n=300 rcut=0.45"
                )
                system, nb = build_scenario(spec)
                assert len(system.positions) >= family.min_particles
                assert float(np.sum(system.charges)) == pytest.approx(
                    0.0, abs=1e-9
                )

    def test_build_deterministic(self):
        a, _ = build_scenario(concretize_text("ionic n=300 rcut=0.45"))
        b, _ = build_scenario(concretize_text("ionic n=300 rcut=0.45"))
        np.testing.assert_array_equal(a.positions, b.positions)

    def test_abstract_spec_rejected(self):
        from repro.scenarios.spec import SpecError, parse_spec

        with pytest.raises(SpecError, match="concrete"):
            build_scenario(parse_spec("water"))


class TestConfigDerivation:
    def test_rung_maps(self):
        assert set(RUNG_TO_LEVEL) == set(RUNG_TO_KERNEL_SPEC)
        for rung, name in RUNG_TO_KERNEL_SPEC.items():
            assert name in ALL_SPECS
            assert 0 <= RUNG_TO_LEVEL[rung] <= 3

    def test_engine_config_fused(self):
        config = engine_config_for(concretize_text("water"))
        assert config.optimization_level == 3
        assert config.constraint_algorithm == "auto"
        assert config.kernel_impl is None  # kernel=auto -> env-resolved
        assert config.nonbonded.coulomb_mode == "rf"

    def test_engine_config_nvt_couples_thermostat(self):
        config = engine_config_for(
            concretize_text("water ensemble=nvt temp=280")
        )
        assert config.integrator.thermostat == "vrescale"
        assert config.integrator.target_temperature == pytest.approx(280.0)
        nve = engine_config_for(concretize_text("water"))
        assert nve.integrator.thermostat == "none"

    def test_engine_config_overrides_pass_through(self):
        config = engine_config_for(
            concretize_text("water"), report_interval=7, backend="serial"
        )
        assert config.report_interval == 7
        assert config.backend == "serial"

    def test_md_config_pme(self):
        config = md_config_for(concretize_text("water elec=pme"))
        assert config.use_pme
        assert config.nonbonded.coulomb_mode == "ewald"
        assert not md_config_for(concretize_text("water")).use_pme

    def test_kernel_variant_passes_through(self):
        config = engine_config_for(
            concretize_text("water kernel=vectorized")
        )
        assert config.kernel_impl == "vectorized"

    def test_elec_to_coulomb(self):
        assert nonbonded_for(
            concretize_text("water elec=cut")
        ).coulomb_mode == "cut"
        assert nonbonded_for(
            concretize_text("ljmix")
        ).coulomb_mode == "none"

    def test_kernel_spec_name_per_rung(self):
        for rung, expected in RUNG_TO_KERNEL_SPEC.items():
            extra = "platform=knl" if rung == "ori" else ""
            spec = concretize_text(f"water rung={rung} {extra}".strip())
            assert kernel_spec_name_for(spec) == expected


class TestFingerprints:
    def test_stable_across_spellings(self):
        a = concretize_text("water@spce n=1500 ensemble=nvt elec=rf")
        b = concretize_text("water@spce elec=rf n=1500 ensemble=nvt")
        assert scenario_fingerprint(a) == scenario_fingerprint(b)

    def test_distinct_for_distinct_specs(self):
        a = concretize_text("water n=900")
        b = concretize_text("water n=1500")
        assert scenario_fingerprint(a) != scenario_fingerprint(b)

    def test_hex_digest_shape(self):
        fp = scenario_fingerprint(concretize_text("water"))
        assert len(fp) == 32
        int(fp, 16)


class TestAudit:
    def test_full_matrix_no_drift(self):
        report = audit()
        assert report["drift"] == []
        assert report["concretized"] > 0
        assert report["rejected"] > 0  # declared rules actually fire
        assert report["cells"] == (
            report["concretized"] + report["rejected"]
        )

    def test_matrix_covers_every_family_version(self):
        heads = {text.split()[0] for text, _ in variant_matrix()}
        for family in FAMILIES.values():
            for version in family.versions:
                assert f"{family.name}@{version}" in heads
