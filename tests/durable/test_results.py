"""Result-store semantics: atomic persistence, LRU bounds, integrity.

The store's contract is "a damaged cache can cost a re-execution,
never a wrong answer" — so every corruption shape (bad magic, flipped
body bit, truncated file) must read as a miss and quarantine the entry.
"""

from __future__ import annotations

import pytest

from repro.durable.results import ResultStore, ResultStoreError


def put(store: ResultStore, fp: str, value: int = 0) -> None:
    store.put(fp, {"kind": "kernel", "payload": {"energy": value}})


class TestRoundTrip:
    def test_put_get(self, tmp_path):
        store = ResultStore(tmp_path)
        put(store, "abc", 42)
        record = store.get("abc")
        assert record == {"kind": "kernel", "payload": {"energy": 42}}
        assert store.hits == 1 and store.misses == 0

    def test_miss(self, tmp_path):
        store = ResultStore(tmp_path)
        assert store.get("nope") is None
        assert store.misses == 1

    def test_overwrite_same_fingerprint(self, tmp_path):
        store = ResultStore(tmp_path)
        put(store, "abc", 1)
        put(store, "abc", 2)
        assert len(store) == 1
        assert store.get("abc")["payload"]["energy"] == 2

    def test_survives_restart(self, tmp_path):
        put(ResultStore(tmp_path), "abc", 7)
        fresh = ResultStore(tmp_path)
        assert "abc" in fresh
        assert fresh.get("abc")["payload"]["energy"] == 7


class TestLruBound:
    def test_eviction_past_bound(self, tmp_path):
        store = ResultStore(tmp_path, max_entries=2)
        put(store, "a")
        put(store, "b")
        put(store, "c")
        assert len(store) == 2
        assert store.evictions == 1
        assert "a" not in store and "b" in store and "c" in store

    def test_get_refreshes_lru_order(self, tmp_path):
        store = ResultStore(tmp_path, max_entries=2)
        put(store, "a")
        put(store, "b")
        store.get("a")  # a is now most recently used
        put(store, "c")  # evicts b, not a
        assert "a" in store and "b" not in store

    def test_restart_enforces_bound(self, tmp_path):
        store = ResultStore(tmp_path, max_entries=8)
        for i in range(5):
            put(store, f"fp{i}")
        fresh = ResultStore(tmp_path, max_entries=2)
        assert len(fresh) == 2
        assert fresh.evictions == 3

    def test_invalid_bound_rejected(self, tmp_path):
        with pytest.raises(ResultStoreError):
            ResultStore(tmp_path, max_entries=0)


class TestIntegrity:
    def test_flipped_body_bit_is_a_miss(self, tmp_path):
        store = ResultStore(tmp_path)
        put(store, "abc", 42)
        path = tmp_path / "abc.res"
        data = bytearray(path.read_bytes())
        data[-3] ^= 0x40
        path.write_bytes(bytes(data))
        fresh = ResultStore(tmp_path)
        assert fresh.get("abc") is None
        assert fresh.corrupt_dropped == 1
        assert not path.exists()  # quarantined by deletion

    def test_bad_magic_is_a_miss(self, tmp_path):
        store = ResultStore(tmp_path)
        put(store, "abc")
        path = tmp_path / "abc.res"
        path.write_bytes(b"NOTMAGIC\n0\n{}")
        assert ResultStore(tmp_path).get("abc") is None

    def test_truncated_file_is_a_miss(self, tmp_path):
        store = ResultStore(tmp_path)
        put(store, "abc")
        path = tmp_path / "abc.res"
        path.write_bytes(path.read_bytes()[:12])
        assert ResultStore(tmp_path).get("abc") is None

    def test_stats_shape(self, tmp_path):
        store = ResultStore(tmp_path, max_entries=4)
        put(store, "a")
        store.get("a")
        store.get("zzz")
        assert store.stats() == {
            "entries": 1,
            "max_entries": 4,
            "hits": 1,
            "misses": 1,
            "evictions": 0,
            "corrupt_dropped": 0,
        }

    def test_sync_is_callable(self, tmp_path):
        store = ResultStore(tmp_path)
        put(store, "a")
        store.sync()  # drain-path barrier must not raise
