"""Journal semantics: replayable pending sets, corruption-tolerant
recovery, segment rotation, and compaction.

The corruption tests stage the two real-world failure shapes by hand:
the torn final append of a ``kill -9``'d writer (truncated JSON line)
and a bit-flipped record inside an otherwise healthy segment (checksum
mismatch).  Both must *end that segment's replay* — counted, never
raised — while later segments keep replaying.
"""

from __future__ import annotations

import json

import pytest

from repro.durable.journal import (
    JobJournal,
    JournalError,
    SEGMENT_PREFIX,
    SEGMENT_SUFFIX,
)


def segments(directory):
    return sorted(
        p
        for p in directory.iterdir()
        if p.name.startswith(SEGMENT_PREFIX)
        and p.name.endswith(SEGMENT_SUFFIX)
    )


def accept(journal: JobJournal, jid: int, tenant: str = "default") -> None:
    journal.accepted(jid, f"fp{jid}", tenant, {"n_particles": 300 + jid})


class TestAppendRecover:
    def test_unresolved_jobs_are_pending(self, tmp_path):
        with JobJournal(tmp_path) as j:
            accept(j, 1)
            accept(j, 2)
            accept(j, 3)
            j.completed(2, "fp2")
            j.failed(3, "fp3", "timeout", "too slow")
        recovery = JobJournal(tmp_path).recover()
        assert [p.jid for p in recovery.pending] == [1]
        assert recovery.pending[0].request == {"n_particles": 301}
        assert recovery.pending[0].tenant == "default"
        assert recovery.completed == 1
        assert recovery.failed == 1
        assert recovery.records == 5
        assert recovery.corrupt_records == 0
        assert recovery.max_jid == 3
        assert recovery.replayable == 1

    def test_clean_journal_recovers_empty(self, tmp_path):
        with JobJournal(tmp_path) as j:
            accept(j, 1)
            j.completed(1, "fp1")
        recovery = JobJournal(tmp_path).recover()
        assert recovery.pending == []
        # Compaction with an empty pending set leaves no segments.
        assert segments(tmp_path) == []

    def test_pending_order_is_jid_order(self, tmp_path):
        with JobJournal(tmp_path) as j:
            for jid in (5, 2, 9):
                accept(j, jid)
        recovery = JobJournal(tmp_path).recover()
        assert [p.jid for p in recovery.pending] == [2, 5, 9]
        assert recovery.max_jid == 9

    def test_duplicate_acceptance_is_idempotent(self, tmp_path):
        # A crash mid-compaction can leave the same acceptance twice
        # (old segment + rewritten segment); last record per jid wins.
        with JobJournal(tmp_path) as j:
            accept(j, 1)
            accept(j, 1)
        recovery = JobJournal(tmp_path).recover()
        assert [p.jid for p in recovery.pending] == [1]


class TestSegments:
    def test_rotation_by_record_count(self, tmp_path):
        with JobJournal(tmp_path, segment_records=2) as j:
            for jid in range(1, 6):
                accept(j, jid)
        assert len(segments(tmp_path)) == 3

    def test_recovery_spans_segments(self, tmp_path):
        with JobJournal(tmp_path, segment_records=2) as j:
            for jid in range(1, 6):
                accept(j, jid)
            j.completed(1, "fp1")
            j.completed(4, "fp4")
        recovery = JobJournal(tmp_path).recover()
        assert [p.jid for p in recovery.pending] == [2, 3, 5]

    def test_compaction_rewrites_pending_into_one_segment(self, tmp_path):
        with JobJournal(tmp_path, segment_records=2) as j:
            for jid in range(1, 8):
                accept(j, jid)
            for jid in range(1, 6):
                j.completed(jid, f"fp{jid}")
        journal = JobJournal(tmp_path)
        recovery = journal.recover()
        assert [p.jid for p in recovery.pending] == [6, 7]
        remaining = segments(tmp_path)
        assert len(remaining) == 1
        lines = remaining[0].read_bytes().splitlines()
        assert len(lines) == 2
        # The rewrite is not counted as journal traffic.
        assert journal.appended == 0
        # And the rewritten journal replays identically.
        again = JobJournal(tmp_path).recover()
        assert [p.jid for p in again.pending] == [6, 7]

    def test_new_writer_never_reopens_old_segment(self, tmp_path):
        with JobJournal(tmp_path) as j:
            accept(j, 1)
        first = segments(tmp_path)
        with JobJournal(tmp_path) as j:
            accept(j, 2)
        assert len(segments(tmp_path)) == 2
        assert first[0] in segments(tmp_path)

    def test_invalid_segment_records_rejected(self, tmp_path):
        with pytest.raises(JournalError):
            JobJournal(tmp_path, segment_records=0)


class TestCorruptionTolerance:
    def test_truncated_last_record_is_dropped_not_raised(self, tmp_path):
        with JobJournal(tmp_path) as j:
            accept(j, 1)
            accept(j, 2)
        seg = segments(tmp_path)[0]
        data = seg.read_bytes()
        # Tear the final append mid-record, like a crashed writer.
        seg.write_bytes(data[: len(data) - 20])
        recovery = JobJournal(tmp_path).recover()
        assert [p.jid for p in recovery.pending] == [1]
        assert recovery.corrupt_records == 1
        assert recovery.corrupt_segments == 1

    def test_bad_checksum_ends_that_segments_replay(self, tmp_path):
        with JobJournal(tmp_path, segment_records=2) as j:
            accept(j, 1)
            accept(j, 2)  # segment 1: jids 1, 2
            accept(j, 3)
            accept(j, 4)  # segment 2: jids 3, 4
        seg1, seg2 = segments(tmp_path)[:2]
        lines = seg1.read_bytes().splitlines()
        # Flip a content bit in the first record; its checksum no longer
        # matches, so jid 1 AND jid 2 (rest of segment) are dropped...
        record = json.loads(lines[0])
        record["tenant"] = "tampered"
        lines[0] = json.dumps(record, sort_keys=True).encode()
        seg1.write_bytes(b"\n".join(lines) + b"\n")
        recovery = JobJournal(tmp_path).recover()
        # ...while segment 2 still replays.
        assert [p.jid for p in recovery.pending] == [3, 4]
        assert recovery.corrupt_records == 2
        assert recovery.corrupt_segments == 1

    def test_garbage_file_among_segments(self, tmp_path):
        with JobJournal(tmp_path) as j:
            accept(j, 1)
        garbage = tmp_path / f"{SEGMENT_PREFIX}999999{SEGMENT_SUFFIX}"
        garbage.write_bytes(b"\x00\x01not json at all\n")
        recovery = JobJournal(tmp_path).recover()
        assert [p.jid for p in recovery.pending] == [1]
        assert recovery.corrupt_segments == 1
        # max_jid ignores garbage; new ids continue from real records.
        assert recovery.max_jid == 1
