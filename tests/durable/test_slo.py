"""SLO metric semantics: deterministic percentiles, rate accounting,
and the live-hooks == trace-replay equivalence.

The trace test is the load-bearing one: the same numbers must come out
of the live ``observe_*`` path and an offline rebuild from recorded
CAT_SERVE spans, because DESIGN.md §12 sells them as two feeding paths
of one metric definition.
"""

from __future__ import annotations

import pytest

from repro.durable.slo import SloTracker, nearest_rank
from repro.trace.events import CAT_SERVE, SERVE_TRACK, Tracer


class TestNearestRank:
    def test_empty_is_zero(self):
        assert nearest_rank([], 0.99) == 0.0

    def test_single_sample(self):
        assert nearest_rank([3.5], 0.50) == 3.5
        assert nearest_rank([3.5], 0.99) == 3.5

    def test_median_of_odd_set(self):
        assert nearest_rank([5.0, 1.0, 3.0], 0.50) == 3.0

    def test_p99_is_max_on_small_sets(self):
        samples = list(range(10))
        assert nearest_rank([float(s) for s in samples], 0.99) == 9.0

    def test_deterministic_under_permutation(self):
        a = [4.0, 2.0, 9.0, 1.0]
        b = [9.0, 1.0, 4.0, 2.0]
        assert nearest_rank(a, 0.5) == nearest_rank(b, 0.5)

    def test_rejects_bad_quantile(self):
        with pytest.raises(ValueError):
            nearest_rank([1.0], 1.5)


class TestLiveHooks:
    def test_rates(self):
        slo = SloTracker()
        for _ in range(3):
            slo.observe_submitted("a")
        slo.observe_rejected("a", "queue_full")
        slo.observe_result("a", ok=True, queue_seconds=0.1,
                           execute_seconds=0.4)
        slo.observe_result("a", ok=True, queue_seconds=0.2,
                           execute_seconds=0.3, attempts=3)
        slo.observe_result("a", ok=False, queue_seconds=0.0,
                           execute_seconds=0.0)
        row = slo.as_dict()["a"]
        assert row["submitted"] == 3
        assert row["completed"] == 2
        assert row["failed"] == 1
        assert row["rejected"] == 1
        assert row["rejected_by_reason"] == {"queue_full": 1}
        assert row["retried"] == 1
        assert row["rejection_rate"] == pytest.approx(0.25)  # 1 / (3+1)
        assert row["retry_rate"] == pytest.approx(1 / 3)
        assert row["p50_latency_s"] == pytest.approx(0.5)
        assert row["samples"] == 3

    def test_durability_counters(self):
        slo = SloTracker()
        slo.observe_submitted("a")
        slo.observe_result("a", ok=True, queue_seconds=0.0,
                           execute_seconds=0.0, replayed=True)
        slo.observe_submitted("a")
        slo.observe_result("a", ok=True, queue_seconds=0.0,
                           execute_seconds=0.0, store_hit=True)
        row = slo.as_dict()["a"]
        assert row["journal_replays"] == 1
        assert row["store_hits"] == 1

    def test_window_bound(self):
        slo = SloTracker(window=4)
        for i in range(10):
            slo.observe_submitted("a")
            slo.observe_result("a", ok=True, queue_seconds=0.0,
                               execute_seconds=float(i))
        row = slo.as_dict()["a"]
        assert row["samples"] == 4
        # Only the most recent 4 samples (6..9) remain.
        assert row["p50_latency_s"] == pytest.approx(7.0)

    def test_tenants_isolated_and_sorted(self):
        slo = SloTracker()
        slo.observe_submitted("zeta")
        slo.observe_submitted("alpha")
        out = slo.as_dict()
        assert list(out) == ["alpha", "zeta"]
        assert out["alpha"]["submitted"] == 1

    def test_queue_snapshot_merge(self):
        slo = SloTracker()
        slo.observe_submitted("a")
        out = slo.as_dict(
            tenant_queues={"a": {"depth": 3, "oldest_age_seconds": 1.5},
                           "idle": {"depth": 1, "oldest_age_seconds": 0.2}}
        )
        assert out["a"]["queue_depth"] == 3
        assert out["a"]["oldest_age_seconds"] == 1.5
        # A tenant known only to the live queue still gets a row.
        assert out["idle"]["queue_depth"] == 1
        assert out["idle"]["submitted"] == 0


class TestFromTrace:
    def test_trace_replay_matches_live_hooks(self):
        tracer = Tracer()
        hz = tracer.params.clock_hz
        live = SloTracker()
        jobs = [("a", 0.10, 0.40), ("a", 0.20, 0.30), ("b", 0.05, 0.15)]
        for i, (tenant, queue_s, exec_s) in enumerate(jobs, start=1):
            live.observe_submitted(tenant)
            live.observe_result(tenant, ok=True, queue_seconds=queue_s,
                                execute_seconds=exec_s)
            tracer.span(f"queue:{i}", CAT_SERVE, SERVE_TRACK,
                        0.0, queue_s * hz, tenant=tenant)
            tracer.span(f"exec:{i}", CAT_SERVE, SERVE_TRACK,
                        queue_s * hz, exec_s * hz)
        tracer.instant("reject:queue_full", CAT_SERVE, SERVE_TRACK,
                       tenant="a")
        live.observe_rejected("a", "queue_full")

        replayed = SloTracker.from_trace(tracer)
        live_out, replay_out = live.as_dict(), replayed.as_dict()
        assert set(live_out) == set(replay_out)
        for tenant in live_out:
            for key in ("submitted", "completed", "rejected",
                        "rejected_by_reason", "samples"):
                assert live_out[tenant][key] == replay_out[tenant][key]
            assert replay_out[tenant]["p50_latency_s"] == pytest.approx(
                live_out[tenant]["p50_latency_s"]
            )
            assert replay_out[tenant]["p99_queue_s"] == pytest.approx(
                live_out[tenant]["p99_queue_s"]
            )

    def test_non_serve_events_ignored(self):
        tracer = Tracer()
        tracer.emit("force_kernel", "compute", 0, 1000.0)
        assert SloTracker.from_trace(tracer).as_dict() == {}
