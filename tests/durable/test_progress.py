"""Progress publication: rate limiting, atomic snapshots, and the
engine-side hookup that feeds the ``progress`` wire op."""

from __future__ import annotations

import pytest

from repro.durable.progress import (
    ProgressWriter,
    progress_interval,
    read_progress,
)


class TestWriter:
    def test_publishes_at_interval_and_final(self, tmp_path):
        path = tmp_path / "p.json"
        writer = ProgressWriter(path, interval=4)
        writer.update(1, 10)
        assert read_progress(path) is None  # rate-limited away
        writer.update(4, 10)
        assert read_progress(path) == {"steps_done": 4, "steps_total": 10}
        writer.update(10, 10)  # final step always publishes
        assert read_progress(path) == {"steps_done": 10, "steps_total": 10}

    def test_monotone(self, tmp_path):
        path = tmp_path / "p.json"
        writer = ProgressWriter(path, interval=1)
        writer.update(5, 10)
        writer.update(5, 10)  # re-publish of the same step is a no-op
        assert read_progress(path) == {"steps_done": 5, "steps_total": 10}

    def test_interval_must_be_positive(self, tmp_path):
        with pytest.raises(ValueError):
            ProgressWriter(tmp_path / "p.json", interval=0)


class TestReader:
    def test_missing_file_is_none(self, tmp_path):
        assert read_progress(tmp_path / "absent.json") is None

    def test_garbage_is_none(self, tmp_path):
        path = tmp_path / "p.json"
        path.write_text("{not json")
        assert read_progress(path) is None
        path.write_text('"a string"')
        assert read_progress(path) is None


class TestInterval:
    def test_roughly_n_publishes(self):
        assert progress_interval(100, publishes=20) == 5
        assert progress_interval(2000, publishes=20) == 100

    def test_short_runs_publish_every_step(self):
        assert progress_interval(3, publishes=20) == 1
        assert progress_interval(0, publishes=20) == 1


class TestEngineHookup:
    def test_engine_step_loop_publishes(self, tmp_path):
        from repro.core.engine import EngineConfig, SWGromacsEngine
        from repro.md.nonbonded import NonbondedParams
        from repro.md.water import build_water_system

        path = tmp_path / "run.progress"
        system = build_water_system(300)
        engine = SWGromacsEngine(
            system,
            EngineConfig(
                nonbonded=NonbondedParams(
                    r_cut=0.45, r_list=0.55, coulomb_mode="rf"
                )
            ),
        )
        engine.run(3, progress=ProgressWriter(path, interval=1))
        assert read_progress(path) == {"steps_done": 3, "steps_total": 3}
