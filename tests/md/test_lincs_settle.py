"""LINCS and SETTLE constraint solvers: correctness, cross-validation
against SHAKE, and the solver factory."""

import numpy as np
import pytest

from repro.md.constraints import (
    CONSTRAINT_ALGORITHMS,
    ConstraintError,
    ShakeSolver,
    build_constraint_solver,
)
from repro.md.integrator import IntegratorConfig
from repro.md.lincs import LincsConfig, LincsSolver
from repro.md.mdloop import MdConfig, MdLoop
from repro.md.nonbonded import NonbondedParams
from repro.md.settle import SettleParameters, SettleSolver
from repro.md.water import build_water_system


@pytest.fixture(scope="module")
def water():
    return build_water_system(300, seed=3)


class TestLincs:
    def test_projects_onto_constraints(self, water, rng):
        solver = LincsSolver(water.topology.constraints, water.masses)
        ref = water.positions.copy()
        pos = ref + rng.normal(scale=0.002, size=ref.shape)
        solver.apply_positions(pos, ref, water.box)
        assert solver.max_violation(pos, water.box) < 1e-4

    def test_convergence_with_order(self, water, rng):
        """Higher expansion order lowers the residual — and the slow
        convergence on water triangles reproduces the documented LINCS
        limitation with coupled angle constraints."""
        ref = water.positions.copy()
        kick = rng.normal(scale=0.005, size=ref.shape)
        residuals = []
        for order in (2, 4, 8):
            solver = LincsSolver(
                water.topology.constraints,
                water.masses,
                LincsConfig(lincs_order=order, lincs_iter=4),
            )
            pos = ref + kick
            try:
                solver.apply_positions(pos, ref, water.box)
            except ConstraintError:
                pass
            residuals.append(solver.max_violation(pos, water.box))
        assert residuals[0] > residuals[1] > residuals[2]

    def test_uncoupled_chain_converges_fast(self, rng):
        """Without shared atoms the coupling matrix is zero and one
        phase-1 projection is essentially exact."""
        from repro.md.topology import Constraint, Topology
        from repro.md.constants import LJ_FLUID
        from repro.md.box import Box
        from repro.md.system import ParticleSystem

        topo = Topology([LJ_FLUID])
        for m in range(10):
            topo.add_particles(["AR", "AR"], [0.0, 0.0], mol_id=m)
            topo.constraints.append(Constraint(2 * m, 2 * m + 1, 0.2))
        pos = rng.uniform(0, 4.0, (20, 3))
        # Start from satisfied constraints.
        for c in topo.constraints:
            d = pos[c.j] - pos[c.i]
            pos[c.j] = pos[c.i] + 0.2 * d / np.linalg.norm(d)
        system = ParticleSystem(pos, Box.cubic(4.0), topo)
        solver = LincsSolver(topo.constraints, system.masses, LincsConfig(2, 1))
        trial = system.positions + rng.normal(scale=0.004, size=(20, 3))
        solver.apply_positions(trial, system.positions, system.box)
        assert solver.max_violation(trial, system.box) < 1e-8

    def test_velocity_projection(self, water, rng):
        solver = LincsSolver(water.topology.constraints, water.masses)
        v = rng.normal(scale=1.0, size=water.positions.shape)
        solver.apply_velocities(v, water.positions, water.box)
        a = solver.arrays
        dr = water.box.displacement(water.positions[a.i], water.positions[a.j])
        dv = v[a.i] - v[a.j]
        assert np.abs(np.sum(dr * dv, axis=1)).max() < 5e-2

    def test_config_validation(self):
        with pytest.raises(ValueError):
            LincsConfig(lincs_order=0)
        with pytest.raises(ValueError):
            LincsConfig(lincs_iter=0)


class TestSettle:
    def test_exact_constraints(self, water, rng):
        solver = SettleSolver.from_water_topology(water)
        ref = water.positions.copy()
        pos = ref + rng.normal(scale=0.01, size=ref.shape)
        solver.apply_positions(pos, ref, water.box)
        assert solver.max_violation(pos, water.box) < 1e-12

    def test_matches_shake_small_displacement(self, water, rng):
        settle = SettleSolver.from_water_topology(water)
        shake = ShakeSolver(
            water.topology.constraints, water.masses, tolerance=1e-14
        )
        ref = water.positions.copy()
        trial = ref + rng.normal(scale=0.001, size=ref.shape)
        ps, pk = trial.copy(), trial.copy()
        settle.apply_positions(ps, ref, water.box)
        shake.apply_positions(pk, ref, water.box)
        # Same point on the constraint manifold, up to box wrapping.
        diff = water.box.minimum_image(ps - pk)
        assert np.abs(diff).max() < 1e-6

    def test_momentum_conserved(self, water, rng):
        solver = SettleSolver.from_water_topology(water)
        ref = water.positions.copy()
        pos = ref + rng.normal(scale=0.005, size=ref.shape)
        com_before = (water.masses[:, None] * pos).sum(axis=0)
        solver.apply_positions(pos, ref, water.box)
        com_after = (water.masses[:, None] * pos).sum(axis=0)
        # COM moves only by box-wrap multiples; use minimum image.
        shift = water.box.minimum_image(
            (com_after - com_before) / water.masses.sum()
        )
        assert np.abs(shift).max() < 1e-10

    def test_velocity_stage_exact(self, water, rng):
        solver = SettleSolver.from_water_topology(water)
        v = rng.normal(scale=1.0, size=water.positions.shape)
        p_before = (water.masses[:, None] * v).sum(axis=0)
        solver.apply_velocities(v, water.positions, water.box)
        shake = ShakeSolver(water.topology.constraints, water.masses)
        a = shake.arrays
        dr = water.box.displacement(water.positions[a.i], water.positions[a.j])
        dv = v[a.i] - v[a.j]
        assert np.abs(np.sum(dr * dv, axis=1)).max() < 1e-12
        p_after = (water.masses[:, None] * v).sum(axis=0)
        np.testing.assert_allclose(p_before, p_after, atol=1e-10)

    def test_parameters_from_geometry(self):
        p = SettleParameters.from_geometry(0.1, 0.16, 16.0, 1.0)
        # COM lies between O and the HH midpoint, mass-weighted.
        t = p.ra + p.rb
        assert t == pytest.approx(np.sqrt(0.1**2 - 0.08**2))
        assert p.ra * 16.0 == pytest.approx(2.0 * p.rb * 1.0 + p.ra * (16 - 16))
        assert 16.0 * p.ra == pytest.approx(2.0 * 1.0 * p.rb)
        with pytest.raises(ValueError):
            SettleParameters.from_geometry(0.1, 0.25, 16.0, 1.0)

    def test_rejects_non_water(self, lj_small):
        with pytest.raises(ValueError):
            SettleSolver.from_water_topology(lj_small)


class TestFactoryAndDynamics:
    def test_factory_dispatch(self, water, lj_small):
        from repro.md.lincs import LincsSolver as L
        from repro.md.settle import SettleSolver as S

        assert isinstance(build_constraint_solver(water, "auto"), S)
        assert isinstance(build_constraint_solver(water, "lincs"), L)
        assert isinstance(build_constraint_solver(water, "shake"), ShakeSolver)
        assert build_constraint_solver(lj_small, "auto") is None
        with pytest.raises(ValueError):
            build_constraint_solver(water, "magic")
        assert set(CONSTRAINT_ALGORITHMS) == {"auto", "shake", "lincs", "settle"}

    @pytest.mark.parametrize("algorithm", ["shake", "settle", "lincs"])
    def test_dynamics_agree_across_solvers(self, algorithm):
        """20 steps of identical dynamics regardless of constraint solver
        (they project onto the same manifold)."""
        system = build_water_system(300, seed=2019)
        cfg = MdConfig(
            nonbonded=NonbondedParams(r_cut=0.64, r_list=0.7, coulomb_mode="rf"),
            integrator=IntegratorConfig(dt=0.001, thermostat="none"),
            constraint_algorithm=algorithm,
            report_interval=20,
        )
        system.thermalize(300.0, np.random.default_rng(5))
        loop = MdLoop(system, cfg)
        res = loop.run(21)
        frame = res.reporter.frames[-1]
        if algorithm == "shake":
            type(self).reference_energy = frame.total
        else:
            assert frame.total == pytest.approx(
                type(self).reference_energy, rel=5e-3
            )
