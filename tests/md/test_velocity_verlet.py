"""Velocity-Verlet: NVE conservation, equivalence with leapfrog, and
constrained dynamics."""

import numpy as np
import pytest

from repro.md.constraints import build_constraint_solver
from repro.md.forces import compute_short_range
from repro.md.integrator import IntegratorConfig, LeapfrogIntegrator
from repro.md.mdloop import MdConfig
from repro.md.minimize import minimize
from repro.md.nonbonded import NonbondedParams
from repro.md.pairlist import build_pair_list
from repro.md.velocity_verlet import VelocityVerletIntegrator
from repro.md.water import build_lj_fluid, build_water_system


def make_force_fn(nonbonded):
    state = {}

    def force_fn(system):
        if "plist" not in state or state["age"] >= nonbonded.nstlist:
            state["plist"] = build_pair_list(system, nonbonded.r_list)
            state["age"] = 0
        state["age"] += 1
        return compute_short_range(
            system, state["plist"], nonbonded
        ).forces

    return force_fn


class TestVelocityVerlet:
    def test_free_particle_linear(self, lj_small):
        sys2 = lj_small.copy()
        sys2.velocities[:] = np.array([0.05, 0.0, 0.0])
        integ = VelocityVerletIntegrator(
            IntegratorConfig(dt=0.002, remove_com_interval=0)
        )
        x0 = sys2.positions.copy()
        zero = np.zeros_like(sys2.positions)
        for _ in range(10):
            integ.step(sys2, zero, lambda s: zero)
        drift = sys2.box.minimum_image(sys2.positions - x0)
        np.testing.assert_allclose(drift[:, 0], 0.05 * 0.002 * 10, atol=1e-12)

    def test_nve_conservation_lj(self):
        system = build_lj_fluid(150, temperature=100.0, seed=5)
        nb = NonbondedParams(r_cut=0.85, r_list=0.95, coulomb_mode="none")
        minimize(system, MdConfig(nonbonded=nb), n_steps=60)
        system.thermalize(100.0, np.random.default_rng(6))
        force_fn = make_force_fn(nb)
        integ = VelocityVerletIntegrator(
            IntegratorConfig(dt=0.002, thermostat="none")
        )
        forces = force_fn(system)
        energies = []
        for step in range(100):
            forces = integ.step(system, forces, force_fn)
            if step % 10 == 0:
                plist = build_pair_list(system, nb.r_list)
                pot = compute_short_range(system, plist, nb).energy
                energies.append(pot + system.kinetic_energy())
        e = np.array(energies)
        assert np.abs(e - e.mean()).max() < 0.05 * system.kinetic_energy()

    def test_nve_conservation_constrained_water(self):
        system = build_water_system(450, seed=5)
        nb = NonbondedParams(r_cut=0.65, r_list=0.75, coulomb_mode="rf")
        minimize(system, MdConfig(nonbonded=nb), n_steps=60)
        system.thermalize(300.0, np.random.default_rng(7))
        solver = build_constraint_solver(system, "settle")
        force_fn = make_force_fn(nb)
        integ = VelocityVerletIntegrator(
            IntegratorConfig(dt=0.001, thermostat="none"), solver
        )
        forces = force_fn(system)
        energies = []
        for step in range(80):
            forces = integ.step(system, forces, force_fn)
            if step % 10 == 0:
                plist = build_pair_list(system, nb.r_list)
                pot = compute_short_range(system, plist, nb).energy
                energies.append(pot + system.kinetic_energy())
        e = np.array(energies)
        assert np.abs(e - e.mean()).max() < 0.06 * system.kinetic_energy()
        assert solver.max_violation(system.positions, system.box) < 1e-10

    def test_matches_leapfrog_short_horizon(self):
        """Both integrators are O(dt^2); over a few steps from identical
        states the trajectories agree to O(dt^2) per step."""
        nb = NonbondedParams(r_cut=0.7, r_list=0.8, coulomb_mode="none")
        base = build_lj_fluid(100, temperature=50.0, seed=9)
        minimize(base, MdConfig(nonbonded=nb), n_steps=40)
        base.thermalize(50.0, np.random.default_rng(10))

        lf_sys = base.copy()
        vv_sys = base.copy()
        force_fn = make_force_fn(nb)
        cfg = IntegratorConfig(dt=0.0005, thermostat="none", remove_com_interval=0)

        lf = LeapfrogIntegrator(cfg)
        # Leapfrog needs v at t - dt/2: back-kick by half a step.
        f0 = force_fn(lf_sys)
        lf_sys.velocities -= 0.5 * cfg.dt * f0 / lf_sys.masses[:, None]
        for _ in range(20):
            lf.step(lf_sys, force_fn(lf_sys))

        vv = VelocityVerletIntegrator(cfg)
        forces = force_fn(vv_sys)
        for _ in range(20):
            forces = vv.step(vv_sys, forces, force_fn)

        drift = vv_sys.box.minimum_image(vv_sys.positions - lf_sys.positions)
        assert np.abs(drift).max() < 5e-5

    def test_thermostat_regulates(self, lj_small, rng):
        sys2 = lj_small.copy()
        sys2.thermalize(300.0, rng)
        integ = VelocityVerletIntegrator(
            IntegratorConfig(
                dt=0.002, thermostat="berendsen", target_temperature=120.0,
                tau_t=0.05,
            )
        )
        zero = np.zeros_like(sys2.positions)
        for _ in range(200):
            integ.step(sys2, zero, lambda s: zero)
        assert sys2.temperature() == pytest.approx(120.0, rel=0.3)
