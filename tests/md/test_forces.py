"""Short-range forces: pair math, reference engine vs brute force,
precision modes, Newton's third law."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.md.forces import (
    brute_force_short_range,
    compute_short_range,
    tile_indices,
)
from repro.md.nonbonded import NonbondedParams, pair_force_energy
from repro.md.pairlist import build_pair_list
from repro.util.units import COULOMB_CONSTANT


class TestPairMath:
    def test_lj_minimum_location(self):
        """dV/dr = 0 at r = (2 C12 / C6)^(1/6)."""
        c6, c12 = 1e-3, 1e-6
        params = NonbondedParams(r_cut=2.0, r_list=2.0, coulomb_mode="none", shift_lj=False)
        r_min = (2 * c12 / c6) ** (1 / 6)
        f, _ = pair_force_energy(
            np.array([r_min**2]), np.array([0.0]), np.array([c6]), np.array([c12]), params
        )
        assert f[0] == pytest.approx(0.0, abs=1e-6)

    def test_lj_energy_at_sigma_zero(self):
        sigma = 0.3
        c6, c12 = 4 * sigma**6, 4 * sigma**12
        params = NonbondedParams(r_cut=2.0, r_list=2.0, coulomb_mode="none", shift_lj=False)
        _, e = pair_force_energy(
            np.array([sigma**2]), np.array([0.0]), np.array([c6]), np.array([c12]), params
        )
        assert e[0] == pytest.approx(0.0, abs=1e-12)

    def test_shift_zeroes_energy_at_cutoff(self):
        params = NonbondedParams(r_cut=1.0, r_list=1.1, coulomb_mode="none", shift_lj=True)
        r2 = np.array([0.9999999**2])
        _, e = pair_force_energy(r2, np.zeros(1), np.array([1e-3]), np.array([1e-6]), params)
        assert e[0] == pytest.approx(0.0, abs=1e-8)

    def test_beyond_cutoff_exact_zero(self):
        params = NonbondedParams(r_cut=1.0, r_list=1.1)
        f, e = pair_force_energy(
            np.array([1.21]), np.array([1.0]), np.array([1e-3]), np.array([1e-6]), params
        )
        assert f[0] == 0.0 and e[0] == 0.0

    def test_mask_guards_zero_distance(self):
        params = NonbondedParams(r_cut=1.0, r_list=1.1)
        f, e = pair_force_energy(
            np.array([0.0]), np.array([1.0]), np.array([1e-3]), np.array([1e-6]),
            params, mask=np.array([False]),
        )
        assert np.isfinite(f[0]) and f[0] == 0.0 and e[0] == 0.0

    def test_rf_energy_zero_at_cutoff(self):
        params = NonbondedParams(r_cut=1.0, r_list=1.1, coulomb_mode="rf")
        _, e = pair_force_energy(
            np.array([0.999999**2]), np.array([1.0]), np.zeros(1), np.zeros(1), params
        )
        assert e[0] == pytest.approx(0.0, abs=1e-4)

    def test_coulomb_cut_matches_analytic(self):
        params = NonbondedParams(r_cut=2.0, r_list=2.0, coulomb_mode="cut")
        r = 0.5
        f, e = pair_force_energy(
            np.array([r * r]), np.array([1.0]), np.zeros(1), np.zeros(1), params
        )
        assert e[0] == pytest.approx(COULOMB_CONSTANT / r)
        assert f[0] == pytest.approx(COULOMB_CONSTANT / r**3)

    @settings(max_examples=40, deadline=None)
    @given(r=st.floats(0.2, 0.95), qq=st.floats(-1.0, 1.0))
    def test_force_is_minus_gradient_property(self, r, qq):
        """f_scalar * r == -dV/dr by central differences, all modes."""
        for mode in ("none", "cut", "rf", "ewald"):
            params = NonbondedParams(r_cut=1.0, r_list=1.1, coulomb_mode=mode, shift_lj=False)
            c6, c12 = np.array([1e-3]), np.array([1e-6])
            h = 1e-6
            f, _ = pair_force_energy(np.array([r * r]), np.array([qq]), c6, c12, params)
            _, e1 = pair_force_energy(np.array([(r + h) ** 2]), np.array([qq]), c6, c12, params)
            _, e2 = pair_force_energy(np.array([(r - h) ** 2]), np.array([qq]), c6, c12, params)
            dvdr = (e1[0] - e2[0]) / (2 * h)
            assert f[0] * r == pytest.approx(-dvdr, rel=1e-4, abs=1e-3)

    def test_parameter_validation(self):
        with pytest.raises(ValueError):
            NonbondedParams(r_cut=0.0)
        with pytest.raises(ValueError):
            NonbondedParams(r_cut=1.0, r_list=0.9)
        with pytest.raises(ValueError):
            NonbondedParams(coulomb_mode="magic")
        with pytest.raises(ValueError):
            NonbondedParams(nstlist=0)


class TestTileIndices:
    def test_shapes_and_values(self):
        si, sj = tile_indices(np.array([0, 2]), np.array([1, 2]))
        assert si.shape == (2, 4, 4)
        assert si[0, 1, 3] == 1  # particle 1 of cluster 0
        assert sj[0, 1, 3] == 7  # particle 3 of cluster 1
        assert si[1, 0, 0] == 8 and sj[1, 0, 0] == 8


class TestReferenceEngine:
    def test_matches_brute_force_lj(self, lj_small, nb_lj, plist_lj):
        res = compute_short_range(lj_small, plist_lj, nb_lj)
        ref = brute_force_short_range(lj_small, nb_lj)
        assert res.energy == pytest.approx(ref.energy, rel=1e-12)
        np.testing.assert_allclose(res.forces, ref.forces, atol=1e-9)

    def test_matches_brute_force_water_rf(self, water_small, nb_water_small, plist_water_small):
        res = compute_short_range(water_small, plist_water_small, nb_water_small)
        ref = brute_force_short_range(water_small, nb_water_small)
        assert res.energy == pytest.approx(ref.energy, rel=1e-10)
        np.testing.assert_allclose(res.forces, ref.forces, atol=1e-8)

    def test_matches_brute_force_ewald(self, water_small):
        nb = NonbondedParams(r_cut=0.8, r_list=0.9, coulomb_mode="ewald")
        plist = build_pair_list(water_small, nb.r_list)
        res = compute_short_range(water_small, plist, nb)
        ref = brute_force_short_range(water_small, nb)
        assert res.energy == pytest.approx(ref.energy, rel=1e-10)

    def test_full_list_equals_half(self, water_small, nb_water_small, plist_water_small):
        half = compute_short_range(water_small, plist_water_small, nb_water_small)
        full = compute_short_range(
            water_small, plist_water_small.to_full(), nb_water_small
        )
        assert full.energy == pytest.approx(half.energy, rel=1e-10)
        np.testing.assert_allclose(full.forces, half.forces, atol=1e-8)

    def test_newtons_third_law(self, water_small, nb_water_small, plist_water_small):
        res = compute_short_range(water_small, plist_water_small, nb_water_small)
        np.testing.assert_allclose(res.forces.sum(axis=0), 0.0, atol=1e-8)

    def test_float32_close_to_float64(self, water_small, nb_water_small, plist_water_small):
        r64 = compute_short_range(water_small, plist_water_small, nb_water_small)
        r32 = compute_short_range(
            water_small, plist_water_small, nb_water_small, dtype=np.float32
        )
        scale = np.abs(r64.forces).max()
        assert np.abs(r32.forces - r64.forces).max() / scale < 1e-4
        assert r32.energy == pytest.approx(r64.energy, rel=1e-4)

    def test_chunking_invariant(self, water_small, nb_water_small, plist_water_small):
        a = compute_short_range(
            water_small, plist_water_small, nb_water_small, chunk_pairs=64
        )
        b = compute_short_range(
            water_small, plist_water_small, nb_water_small, chunk_pairs=10**6
        )
        assert a.energy == pytest.approx(b.energy, rel=1e-13)
        np.testing.assert_allclose(a.forces, b.forces, atol=1e-10)

    def test_exclusions_respected(self, water_small, nb_water_small, plist_water_small):
        """Intra-molecular pairs contribute nothing: an isolated molecule
        has zero short-range force."""
        from repro.md.water import build_water_system

        one = build_water_system(3, seed=1, density=0.05)
        nb = NonbondedParams(r_cut=0.8, r_list=0.9, coulomb_mode="rf")
        plist = build_pair_list(one, nb.r_list)
        res = compute_short_range(one, plist, nb)
        np.testing.assert_allclose(res.forces, 0.0, atol=1e-12)
        assert res.energy == 0.0
