"""PME: spline properties, Madelung constant, force gradients,
beta-independence of the total Ewald energy."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.md.box import Box
from repro.md.constants import AtomType
from repro.md.forces import brute_force_short_range
from repro.md.nonbonded import NonbondedParams
from repro.md.pme import PmeParams, PmeSolver, bspline_m, euler_spline_b2, spline_weights
from repro.md.system import ParticleSystem
from repro.md.topology import Topology
from repro.util.units import COULOMB_CONSTANT

ION = AtomType("ION", 20.0, 0.0, 0.0)


def make_charged_system(positions, charges, edge):
    topo = Topology([ION])
    for m, q in enumerate(charges):
        topo.add_particles(["ION"], [q], mol_id=m)
    return ParticleSystem(np.asarray(positions, dtype=float), Box.cubic(edge), topo)


def total_coulomb(system, beta, spacing=0.06, order=4, r_cut=1.1):
    pme = PmeSolver(system.box, PmeParams(order=order, grid_spacing=spacing, beta=beta))
    res = pme.compute(system)
    nb = NonbondedParams(
        r_cut=r_cut, r_list=r_cut, coulomb_mode="ewald", ewald_beta=beta, shift_lj=False
    )
    sr = brute_force_short_range(system, nb)
    return res.energy + sr.energy, res.forces + sr.forces


class TestBsplines:
    @pytest.mark.parametrize("order", [2, 3, 4, 5, 6])
    def test_partition_of_unity(self, order):
        """Spreading weights sum to exactly 1 for any fractional offset."""
        frac = np.linspace(0, 0.999, 50)
        w, _ = spline_weights(order, frac)
        np.testing.assert_allclose(w.sum(axis=1), 1.0, atol=1e-12)

    @pytest.mark.parametrize("order", [2, 3, 4, 6])
    def test_derivative_sums_to_zero(self, order):
        _, dw = spline_weights(order, np.linspace(0, 0.999, 20))
        np.testing.assert_allclose(dw.sum(axis=1), 0.0, atol=1e-10)

    def test_support_and_positivity(self):
        x = np.linspace(-1, 5, 400)
        m4 = bspline_m(4, x)
        assert np.all(m4 >= -1e-14)
        assert np.all(m4[(x < 0) | (x >= 4)] == 0.0)

    def test_bspline_integral_one(self):
        x = np.linspace(0, 4, 4001)
        m4 = bspline_m(4, x)
        assert np.trapezoid(m4, x) == pytest.approx(1.0, abs=1e-6)

    def test_euler_b2_positive(self):
        b2 = euler_spline_b2(4, 32)
        assert np.all(b2[np.isfinite(b2)] >= 0)
        assert b2[0] == pytest.approx(1.0)

    @settings(max_examples=20, deadline=None)
    @given(frac=st.floats(0.0, 0.999), order=st.sampled_from([3, 4, 5]))
    def test_weight_derivative_numeric(self, frac, order):
        h = 1e-6
        w_p, _ = spline_weights(order, np.array([min(frac + h, 0.9999999)]))
        w_m, _ = spline_weights(order, np.array([max(frac - h, 0.0)]))
        _, dw = spline_weights(order, np.array([frac]))
        numeric = (w_p - w_m) / (w_p.shape[0] and (min(frac + h, 0.9999999) - max(frac - h, 0.0)))
        np.testing.assert_allclose(dw, numeric, atol=1e-4)


class TestPmeEnergies:
    def test_madelung_rock_salt(self):
        """Total Ewald energy of NaCl reproduces M = 1.747565."""
        a = 0.564
        ncell = 2
        pos, q = [], []
        for i in range(2 * ncell):
            for j in range(2 * ncell):
                for k in range(2 * ncell):
                    pos.append([i * a / 2, j * a / 2, k * a / 2])
                    q.append(1.0 if (i + j + k) % 2 == 0 else -1.0)
        system = make_charged_system(pos, q, a * ncell)
        e, _ = total_coulomb(system, beta=3.5, spacing=0.05, order=6)
        madelung = -e * (a / 2) * 2 / (COULOMB_CONSTANT * len(pos))
        assert madelung == pytest.approx(1.747565, rel=2e-3)

    def test_beta_independence(self):
        rng = np.random.default_rng(1)
        q = rng.uniform(-1, 1, 12)
        q -= q.mean()
        system = make_charged_system(rng.uniform(0, 2.4, (12, 3)), q, 2.4)
        energies = [
            total_coulomb(system, beta, spacing=0.05, order=6)[0]
            for beta in (2.8, 3.2, 3.8)
        ]
        assert max(energies) - min(energies) < 2e-3 * abs(np.mean(energies))

    def test_forces_match_numerical_gradient(self):
        rng = np.random.default_rng(2)
        q = rng.uniform(-1, 1, 8)
        q -= q.mean()
        system = make_charged_system(rng.uniform(0, 2.4, (8, 3)), q, 2.4)
        beta = 3.2
        _, f0 = total_coulomb(system, beta, spacing=0.06, order=6)
        h = 1e-5
        for p in (0, 3):
            for d in range(3):
                s1, s2 = system.copy(), system.copy()
                s1.positions[p, d] += h
                s2.positions[p, d] -= h
                e1, _ = total_coulomb(s1, beta, spacing=0.06, order=6)
                e2, _ = total_coulomb(s2, beta, spacing=0.06, order=6)
                assert f0[p, d] == pytest.approx(-(e1 - e2) / (2 * h), rel=1e-3, abs=1e-2)

    def test_reciprocal_net_force_converges_to_zero(self, water_small):
        """Smooth PME breaks exact momentum conservation by interpolation
        error; the net force must shrink rapidly with order/spacing."""
        nets = []
        for spacing, order in ((0.1, 4), (0.06, 6)):
            pme = PmeSolver(
                water_small.box, PmeParams(grid_spacing=spacing, order=order)
            )
            _, f_rec = pme.reciprocal(water_small)
            nets.append(float(np.linalg.norm(f_rec.sum(axis=0))))
        scale = 750.0  # typical |F| in this system (kJ/mol/nm)
        assert nets[1] < nets[0] / 20.0
        assert nets[1] / scale < 1e-3

    def test_self_energy_negative(self, water_small):
        pme = PmeSolver(water_small.box, PmeParams())
        assert pme.self_energy(water_small.charges) < 0

    def test_exclusion_correction_only_intramolecular(self):
        """A system of single-atom molecules has zero exclusion term."""
        rng = np.random.default_rng(3)
        q = rng.uniform(-1, 1, 6)
        q -= q.mean()
        system = make_charged_system(rng.uniform(0, 2.4, (6, 3)), q, 2.4)
        pme = PmeSolver(system.box, PmeParams())
        e, f = pme.exclusion_correction(system)
        assert e == 0.0
        np.testing.assert_array_equal(f, 0.0)

    def test_grid_dims_respect_spacing_and_order(self):
        params = PmeParams(order=6, grid_spacing=0.5)
        dims = params.grid_dims(Box.cubic(2.0))
        assert all(d >= 6 for d in dims)
        dims2 = PmeParams(order=4, grid_spacing=0.1).grid_dims(Box.cubic(2.0))
        assert all(d >= 20 for d in dims2)

    def test_param_validation(self):
        with pytest.raises(ValueError):
            PmeParams(order=1)
        with pytest.raises(ValueError):
            PmeParams(grid_spacing=0.0)
        with pytest.raises(ValueError):
            PmeParams(beta=-1.0)
