"""Cluster pair list: coverage vs brute force, structure invariants."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.md.cells import CellGrid
from repro.md.pairlist import (
    CLUSTER_SIZE,
    brute_force_pairs,
    build_pair_list,
    pair_list_covers,
)
from repro.md.water import build_lj_fluid


class TestCellGrid:
    def test_partition_covers_all_points(self, lj_small):
        grid = CellGrid.build(lj_small.positions, lj_small.box, 0.5)
        members = np.concatenate(
            [grid.cell_members(c) for c in range(grid.n_cells)]
        )
        assert sorted(members) == list(range(lj_small.n_particles))

    def test_flatten_unflatten_roundtrip(self, lj_small):
        grid = CellGrid.build(lj_small.positions, lj_small.box, 0.5)
        ids = np.arange(grid.n_cells)
        np.testing.assert_array_equal(grid.flatten(grid.unflatten(ids)), ids)

    def test_half_offsets_cover_each_pair_once(self):
        grid = CellGrid.build(np.zeros((1, 3)), __import__("repro.md.box", fromlist=["Box"]).Box.cubic(5.0), 1.0)
        offs = grid.neighbor_offsets(half=True)
        assert len(offs) == 14
        seen = {tuple(o) for o in offs}
        for o in offs:
            if tuple(o) != (0, 0, 0):
                assert tuple(-o) not in seen

    def test_rejects_bad_edge(self, lj_small):
        with pytest.raises(ValueError):
            CellGrid.build(lj_small.positions, lj_small.box, 0.0)


class TestPairListStructure:
    def test_slots_padded_to_clusters(self, plist_water_small):
        assert plist_water_small.n_slots % CLUSTER_SIZE == 0
        assert plist_water_small.n_real == 750

    def test_perm_is_permutation(self, plist_water_small):
        p = plist_water_small
        real_perm = p.perm[p.real]
        assert sorted(real_perm) == list(range(750))
        assert np.all(p.perm[~p.real] == -1)

    def test_csr_consistent(self, plist_water_small):
        p = plist_water_small
        assert p.i_starts[0] == 0
        assert p.i_starts[-1] == p.n_cluster_pairs
        assert np.all(np.diff(p.i_starts) >= 0)
        # pair_ci matches CSR segments
        for ci in range(0, p.n_clusters, 7):
            seg = p.pair_ci[p.i_starts[ci] : p.i_starts[ci + 1]]
            assert np.all(seg == ci)

    def test_half_list_canonical(self, plist_water_small):
        assert np.all(plist_water_small.pair_ci <= plist_water_small.pair_cj)

    def test_no_duplicate_pairs(self, plist_water_small):
        p = plist_water_small
        keys = p.pair_ci.astype(np.int64) * p.n_clusters + p.pair_cj
        assert len(np.unique(keys)) == len(keys)

    def test_gather_scatter_roundtrip(self, water_small, plist_water_small):
        values = np.arange(water_small.n_particles, dtype=np.float64)
        sorted_vals = plist_water_small.gather(values)
        out = np.zeros(water_small.n_particles)
        plist_water_small.scatter_add(out, sorted_vals)
        np.testing.assert_array_equal(out, values)

    def test_current_positions_fresh(self, water_small, plist_water_small):
        sys2 = water_small.copy()
        sys2.positions[:] += 0.01
        pos = plist_water_small.current_positions(sys2)
        slot0 = np.nonzero(plist_water_small.real)[0][0]
        orig = plist_water_small.perm[slot0]
        np.testing.assert_allclose(
            pos[slot0], sys2.box.wrap(sys2.positions)[orig]
        )

    def test_to_full_doubles_offdiagonal(self, plist_water_small):
        half = plist_water_small
        full = half.to_full()
        n_diag = int(np.sum(half.pair_ci == half.pair_cj))
        assert full.n_cluster_pairs == 2 * half.n_cluster_pairs - n_diag
        assert not full.half
        assert full.to_full() is full


class TestPairListCoverage:
    def test_lj_coverage(self, lj_small, nb_lj):
        plist = build_pair_list(lj_small, nb_lj.r_list)
        oracle = brute_force_pairs(lj_small, nb_lj.r_list)
        assert pair_list_covers(plist, oracle)

    def test_water_coverage(self, water_small, nb_water_small):
        plist = build_pair_list(water_small, nb_water_small.r_list)
        oracle = brute_force_pairs(water_small, nb_water_small.r_list)
        assert pair_list_covers(plist, oracle)

    def test_full_list_coverage(self, water_small, nb_water_small):
        plist = build_pair_list(water_small, nb_water_small.r_list, half=False)
        oracle = brute_force_pairs(water_small, nb_water_small.r_list)
        assert pair_list_covers(plist, oracle)

    def test_exact_filter_prunes_but_preserves(self, water_small, nb_water_small):
        loose = build_pair_list(
            water_small, nb_water_small.r_list, exact_filter=False
        )
        tight = build_pair_list(
            water_small, nb_water_small.r_list, exact_filter=True
        )
        assert tight.n_cluster_pairs < loose.n_cluster_pairs
        oracle = brute_force_pairs(water_small, nb_water_small.r_list)
        assert pair_list_covers(tight, oracle)

    @settings(max_examples=8, deadline=None)
    @given(seed=st.integers(0, 10_000), n=st.sampled_from([60, 120, 200]))
    def test_coverage_property_random_fluids(self, seed, n):
        system = build_lj_fluid(n, seed=seed, jitter=0.35)
        rlist = min(0.9, system.box.min_edge / 2 * 0.95)
        plist = build_pair_list(system, rlist)
        assert pair_list_covers(plist, brute_force_pairs(system, rlist))

    def test_after_motion_rebuild_covers(self, water_small, nb_water_small, rng):
        sys2 = water_small.copy()
        sys2.positions += rng.normal(scale=0.05, size=sys2.positions.shape)
        plist = build_pair_list(sys2, nb_water_small.r_list)
        assert pair_list_covers(
            plist, brute_force_pairs(sys2, nb_water_small.r_list)
        )

    def test_cutoff_too_large_rejected(self, lj_small):
        with pytest.raises(ValueError):
            build_pair_list(lj_small, lj_small.box.min_edge)


def _brute_force_pairs_scalar(system, r_cut):
    """Pre-vectorisation reference: per-pair python loop over the chunked
    distance matrix (the exact old `brute_force_pairs` body)."""
    pos = system.box.wrap(system.positions)
    n = len(pos)
    pairs = set()
    chunk = max(1, int(4e6) // max(n, 1))
    for lo in range(0, n, chunk):
        hi = min(n, lo + chunk)
        d = system.box.distance(pos[lo:hi, None, :], pos[None, :, :])
        ii, jj = np.nonzero(d < r_cut)
        for i, j in zip(ii + lo, jj):
            if i < j:
                pairs.add((int(i), int(j)))
    return pairs


def _pair_list_covers_scalar(plist, pairs):
    """Pre-vectorisation reference: per-pair permutation walk."""
    listed = set(zip(plist.pair_ci.tolist(), plist.pair_cj.tolist()))
    slot_of = {}
    for slot, orig in enumerate(plist.perm):
        if orig >= 0:
            slot_of[int(orig)] = slot
    for i, j in pairs:
        ci = slot_of[i] // CLUSTER_SIZE
        cj = slot_of[j] // CLUSTER_SIZE
        if plist.half and ci > cj:
            ci, cj = cj, ci
        if (ci, cj) not in listed and (
            plist.half or (cj, ci) not in listed
        ):
            return False
    return True


class TestVectorizedOracles:
    """The numpy-vectorised test oracles must agree with their scalar
    predecessors bit-for-bit (satellite of the host-parallel PR)."""

    def test_brute_force_pairs_matches_scalar(self, lj_small, nb_lj):
        fast = brute_force_pairs(lj_small, nb_lj.r_list)
        slow = _brute_force_pairs_scalar(lj_small, nb_lj.r_list)
        assert fast == slow

    def test_brute_force_pairs_matches_scalar_water(
        self, water_small, nb_water_small
    ):
        fast = brute_force_pairs(water_small, nb_water_small.r_list)
        slow = _brute_force_pairs_scalar(water_small, nb_water_small.r_list)
        assert fast == slow

    @pytest.mark.parametrize("half", [True, False])
    def test_pair_list_covers_matches_scalar(
        self, water_small, nb_water_small, half
    ):
        plist = build_pair_list(water_small, nb_water_small.r_list, half=half)
        oracle = brute_force_pairs(water_small, nb_water_small.r_list)
        assert pair_list_covers(plist, oracle) == _pair_list_covers_scalar(
            plist, oracle
        )
        assert pair_list_covers(plist, oracle)

    def test_pair_list_covers_detects_misses(self, water_small, nb_water_small):
        plist = build_pair_list(water_small, nb_water_small.r_list)
        # A pair well beyond the cutoff cannot be covered: find one by
        # taking two real particles in distant clusters.
        real_particles = plist.perm[plist.perm >= 0]
        far = {(int(real_particles[0]), int(real_particles[-1]))}
        if not _pair_list_covers_scalar(plist, far):
            assert not pair_list_covers(plist, far)
        assert pair_list_covers(plist, set()) is True


class TestGatherCacheBound:
    def test_memo_is_bounded_fifo(self, plist_water_small):
        from repro.md.pairlist import GATHER_CACHE_MAX

        plist = plist_water_small
        plist.invalidate()
        n = plist_water_small.perm.max() + 1
        arrays = [
            np.full(n, float(k)) for k in range(GATHER_CACHE_MAX + 5)
        ]
        for arr in arrays:
            plist.gather_cached(arr)
        cache = plist.__dict__["_gather_cache"]
        assert len(cache) == GATHER_CACHE_MAX
        # FIFO: the oldest entries were evicted, the newest survive.
        assert (id(arrays[0]), None, 0.0) not in cache
        assert (id(arrays[-1]), None, 0.0) in cache
        plist.invalidate()

    def test_invalidate_drops_memo(self, plist_water_small):
        plist = plist_water_small
        arr = np.arange(float(plist.perm.max() + 1))
        first = plist.gather_cached(arr)
        assert plist.gather_cached(arr) is first
        plist.invalidate()
        assert "_gather_cache" not in plist.__dict__
        again = plist.gather_cached(arr)
        assert again is not first
        np.testing.assert_array_equal(again, first)
        plist.invalidate()

    def test_cached_results_read_only_and_equal_gather(self, plist_water_small):
        plist = plist_water_small
        arr = np.arange(float(plist.perm.max() + 1))
        out = plist.gather_cached(arr, fill=-1.0)
        np.testing.assert_array_equal(out, plist.gather(arr, fill=-1.0))
        with pytest.raises(ValueError):
            out[0] = 99.0
        plist.invalidate()
