"""Topology tables, ParticleSystem state, and system builders."""

import numpy as np
import pytest

from repro.md.box import Box
from repro.md.constants import (
    LJ_FLUID,
    SPC_HYDROGEN,
    SPC_OXYGEN,
    SPC_RHH,
    SPC_ROH,
    AtomType,
    WaterGeometry,
)
from repro.md.system import ParticleSystem
from repro.md.topology import Bond, Constraint, Topology
from repro.md.water import build_lj_fluid, build_water_system
from repro.util.units import kinetic_temperature


class TestAtomType:
    def test_from_sigma_epsilon(self):
        at = AtomType.from_sigma_epsilon("X", 1.0, 0.3, 1.0)
        assert at.c6 == pytest.approx(4 * 0.3**6)
        assert at.c12 == pytest.approx(4 * 0.3**12)

    def test_spc_oxygen_values(self):
        # Known SPC values: C6 ~ 2.6e-3, C12 ~ 2.6e-6 (GROMACS units).
        assert SPC_OXYGEN.c6 == pytest.approx(2.617e-3, rel=1e-2)
        assert SPC_OXYGEN.c12 == pytest.approx(2.634e-6, rel=1e-2)
        assert SPC_HYDROGEN.c6 == 0.0


class TestWaterGeometry:
    def test_rigid_distances(self):
        offs = WaterGeometry().site_offsets()
        assert np.linalg.norm(offs[1] - offs[0]) == pytest.approx(SPC_ROH)
        assert np.linalg.norm(offs[2] - offs[0]) == pytest.approx(SPC_ROH)
        assert np.linalg.norm(offs[2] - offs[1]) == pytest.approx(SPC_RHH)


class TestTopology:
    def test_combination_rule_geometric(self):
        topo = Topology([SPC_OXYGEN, SPC_HYDROGEN])
        c6 = topo.c6_table
        assert c6[0, 0] == pytest.approx(SPC_OXYGEN.c6)
        assert c6[0, 1] == pytest.approx(np.sqrt(SPC_OXYGEN.c6 * SPC_HYDROGEN.c6))
        np.testing.assert_allclose(c6, c6.T)

    def test_add_particles_and_masses(self):
        topo = Topology([SPC_OXYGEN, SPC_HYDROGEN])
        ids = topo.add_particles(["OW", "HW", "HW"], [-0.82, 0.41, 0.41], 0)
        np.testing.assert_array_equal(ids, [0, 1, 2])
        np.testing.assert_allclose(
            topo.masses, [SPC_OXYGEN.mass, SPC_HYDROGEN.mass, SPC_HYDROGEN.mass]
        )

    def test_unknown_type(self):
        topo = Topology([LJ_FLUID])
        with pytest.raises(KeyError, match="unknown atom type"):
            topo.add_particles(["XX"], [0.0], 0)

    def test_duplicate_type_names_rejected(self):
        with pytest.raises(ValueError):
            Topology([LJ_FLUID, LJ_FLUID])

    def test_validate_catches_bad_bond(self):
        topo = Topology([LJ_FLUID])
        topo.add_particles(["AR"], [0.0], 0)
        topo.bonds.append(Bond(0, 5, 0.1, 100.0))
        with pytest.raises(ValueError, match="bad bond"):
            topo.validate()

    def test_validate_catches_bad_constraint(self):
        topo = Topology([LJ_FLUID])
        topo.add_particles(["AR"], [0.0], 0)
        topo.add_particles(["AR"], [0.0], 1)
        topo.constraints.append(Constraint(0, 1, -0.5))
        with pytest.raises(ValueError, match="non-positive"):
            topo.validate()


class TestParticleSystem:
    def test_shape_validation(self):
        topo = Topology([LJ_FLUID])
        topo.add_particles(["AR"], [0.0], 0)
        with pytest.raises(ValueError):
            ParticleSystem(np.zeros((2, 3)), Box.cubic(2.0), topo)
        with pytest.raises(ValueError):
            ParticleSystem(np.zeros((1, 2)), Box.cubic(2.0), topo)

    def test_thermalize_hits_target(self, water_small, rng):
        sys2 = water_small.copy()
        sys2.thermalize(250.0, rng)
        assert sys2.temperature() == pytest.approx(250.0, rel=1e-6)
        # COM removed
        p = (sys2.masses[:, None] * sys2.velocities).sum(axis=0)
        np.testing.assert_allclose(p, 0.0, atol=1e-8)

    def test_ndof_accounts_constraints(self, water_small):
        n = water_small.n_particles
        n_con = len(water_small.topology.constraints)
        assert water_small.n_dof() == 3 * n - n_con - 3

    def test_kinetic_temperature_consistency(self, water_small):
        ekin = water_small.kinetic_energy()
        assert water_small.temperature() == pytest.approx(
            kinetic_temperature(ekin, water_small.n_dof())
        )

    def test_copy_independent(self, water_small):
        dup = water_small.copy()
        dup.positions += 0.1
        assert not np.allclose(dup.positions, water_small.positions)


class TestBuilders:
    def test_water_structure(self):
        sys_ = build_water_system(300, seed=1)
        assert sys_.n_particles == 300
        topo = sys_.topology
        assert len(topo.constraints) == 3 * 100
        # Rigid geometry holds in the built configuration.
        for c in topo.constraints[:9]:
            d = sys_.box.distance(sys_.positions[c.i], sys_.positions[c.j])
            assert d == pytest.approx(c.distance, abs=1e-9)
        # Charge neutrality.
        assert sys_.charges.sum() == pytest.approx(0.0, abs=1e-9)

    def test_water_density(self):
        sys_ = build_water_system(3000, seed=2)
        mol_per_nm3 = (sys_.n_particles / 3) / sys_.box.volume
        assert mol_per_nm3 == pytest.approx(33.33, rel=1e-6)

    def test_lj_fluid(self):
        sys_ = build_lj_fluid(100, seed=3)
        assert sys_.n_particles == 100
        assert np.all(sys_.charges == 0.0)
        # every particle its own molecule: no exclusions
        assert len(set(sys_.topology.mol_ids.tolist())) == 100

    def test_builders_reject_tiny(self):
        with pytest.raises(ValueError):
            build_water_system(2)
        with pytest.raises(ValueError):
            build_lj_fluid(1)

    def test_deterministic_by_seed(self):
        a = build_water_system(150, seed=9)
        b = build_water_system(150, seed=9)
        np.testing.assert_array_equal(a.positions, b.positions)
        np.testing.assert_array_equal(a.velocities, b.velocities)
