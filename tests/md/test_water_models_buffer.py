"""Water model variants and Verlet-buffer estimation."""

import numpy as np
import pytest

from repro.md.constants import SPC, SPCE, TIP3P, WATER_MODELS
from repro.md.integrator import IntegratorConfig
from repro.md.mdloop import MdConfig, MdLoop
from repro.md.nonbonded import NonbondedParams
from repro.md.verlet_buffer import (
    check_buffer_sufficient,
    estimate_buffer,
    max_pair_displacement,
    recommend_rlist,
)
from repro.md.water import build_water_system


class TestWaterModels:
    def test_registry(self):
        assert set(WATER_MODELS) == {"spc", "spce", "tip3p"}
        assert WATER_MODELS["spce"] is SPCE

    def test_charge_neutrality_all_models(self):
        for model in (SPC, SPCE, TIP3P):
            assert model.q_oxygen + 2 * model.q_hydrogen == pytest.approx(0.0)

    def test_tip3p_geometry_differs(self):
        assert TIP3P.r_oh != SPC.r_oh
        assert TIP3P.r_hh < SPC.r_hh  # smaller angle and bond

    @pytest.mark.parametrize("name", ["spc", "spce", "tip3p"])
    def test_builder_accepts_model(self, name):
        system = build_water_system(150, model=name)
        model = WATER_MODELS[name]
        assert system.charges[0] == pytest.approx(model.q_oxygen)
        c = system.topology.constraints[0]
        assert c.distance == pytest.approx(model.r_oh)

    def test_unknown_model_rejected(self):
        with pytest.raises(ValueError, match="unknown water model"):
            build_water_system(150, model="tip42p")

    def test_spce_binds_stronger_than_spc(self):
        """SPC/E's larger charges deepen the electrostatic well (compare
        relaxed configurations, not the artificial starting lattice)."""
        from repro.md.minimize import minimize

        nb = NonbondedParams(r_cut=0.6, r_list=0.7, coulomb_mode="rf")
        e = {}
        for name in ("spc", "spce"):
            system = build_water_system(300, model=name, seed=6)
            result = minimize(system, MdConfig(nonbonded=nb), n_steps=60)
            e[name] = result.final_energy
        assert e["spce"] < e["spc"]


class TestVerletBuffer:
    def test_estimate_scales_physically(self, water_small):
        base = estimate_buffer(water_small, 300.0, 0.002, 10)
        assert estimate_buffer(water_small, 600.0, 0.002, 10) == pytest.approx(
            base * np.sqrt(2.0)
        )
        assert estimate_buffer(water_small, 300.0, 0.002, 20) == pytest.approx(
            base * 2.0
        )

    def test_validation(self, water_small):
        with pytest.raises(ValueError):
            estimate_buffer(water_small, -1.0, 0.002, 10)
        with pytest.raises(ValueError):
            estimate_buffer(water_small, 300.0, 0.002, 10, coverage_z=0.0)

    def test_recommend_rlist_clamps(self, water_small):
        r = recommend_rlist(water_small, 0.7, 300.0, 0.001, 10)
        assert r > 0.7
        with pytest.raises(ValueError, match="minimum-image"):
            recommend_rlist(water_small, 0.9, 300.0, 0.004, 50)

    def test_buffer_covers_real_dynamics(self):
        """The default estimate covers the displacements an actual nstlist
        window of water dynamics produces."""
        system = build_water_system(450, seed=12)
        nb = NonbondedParams(r_cut=0.6, r_list=0.75, coulomb_mode="rf")
        cfg = MdConfig(
            nonbonded=nb,
            integrator=IntegratorConfig(
                dt=0.001, thermostat="berendsen", target_temperature=300.0
            ),
            report_interval=100,
        )
        from repro.md.minimize import minimize

        minimize(system, cfg, n_steps=40)
        system.thermalize(300.0, np.random.default_rng(3))
        buffer = estimate_buffer(system, 320.0, 0.001, nb.nstlist)
        before = system.positions.copy()
        MdLoop(system, cfg).run(nb.nstlist)
        moved = max_pair_displacement(before, system.positions, system.box)
        assert moved <= buffer
        assert check_buffer_sufficient(
            before, system.positions, system.box, 0.6, 0.6 + buffer
        )

    def test_check_buffer_detects_violation(self, water_small):
        before = water_small.positions.copy()
        after = before.copy()
        after[0] += 0.2
        assert not check_buffer_sufficient(
            before, after, water_small.box, 0.8, 0.9
        )


class TestGldAblation:
    def test_naive_port_barely_helps(self):
        """The fine-grained gld/gst port uses 64 CPEs yet gains only ~1.5x
        over the MPE — the paper's premise that memory granularity, not
        core count, is the problem."""
        from repro.core.kernels import ALL_SPECS, run_kernel
        from repro.md.pairlist import build_pair_list

        system = build_water_system(3000, seed=7)
        nb = NonbondedParams(r_cut=1.0, r_list=1.0, coulomb_mode="rf")
        plist = build_pair_list(system, nb.r_list)
        ori = run_kernel(system, plist, nb, ALL_SPECS["ORI"])
        gld = run_kernel(system, plist, nb, ALL_SPECS["GLD"])
        pkg = run_kernel(system, plist, nb, ALL_SPECS["PKG"])
        s_gld = ori.elapsed_seconds / gld.elapsed_seconds
        s_pkg = ori.elapsed_seconds / pkg.elapsed_seconds
        assert 1.0 < s_gld < 3.0
        assert s_pkg > 1.5 * s_gld
        # Functional forces still correct.
        np.testing.assert_allclose(gld.forces, ori.forces, atol=1e-6)
