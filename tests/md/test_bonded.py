"""Bonded forces: analytic gradients vs numerical differentiation."""

import numpy as np
import pytest

from repro.md.bonded import angle_forces, bond_forces, compute_bonded, dihedral_forces
from repro.md.box import Box
from repro.md.constants import LJ_FLUID
from repro.md.system import ParticleSystem
from repro.md.topology import Angle, Bond, Dihedral, Topology

BOX = Box.cubic(5.0)


def numeric_forces(positions, energy_fn, h=1e-6):
    f = np.zeros_like(positions)
    for p in range(len(positions)):
        for d in range(3):
            plus = positions.copy()
            minus = positions.copy()
            plus[p, d] += h
            minus[p, d] -= h
            f[p, d] = -(energy_fn(plus) - energy_fn(minus)) / (2 * h)
    return f


class TestBonds:
    def test_equilibrium_zero_force(self):
        pos = np.array([[1.0, 1.0, 1.0], [1.1, 1.0, 1.0]])
        forces = np.zeros_like(pos)
        e = bond_forces(pos, BOX, [Bond(0, 1, 0.1, 1000.0)], forces)
        assert e == pytest.approx(0.0)
        np.testing.assert_allclose(forces, 0.0, atol=1e-12)

    def test_stretched_energy_and_restoring_force(self):
        bonds = [Bond(0, 1, 0.1, 1000.0)]
        pos = np.array([[1.0, 1.0, 1.0], [1.15, 1.0, 1.0]])
        forces = np.zeros_like(pos)
        e = bond_forces(pos, BOX, bonds, forces)
        assert e == pytest.approx(0.5 * 1000.0 * 0.05**2)
        assert forces[0, 0] > 0 and forces[1, 0] < 0  # pulls together

    def test_gradient_numeric(self, rng):
        bonds = [Bond(0, 1, 0.12, 800.0), Bond(1, 2, 0.1, 1200.0)]
        pos = np.array([[1, 1, 1], [1.13, 1.05, 0.98], [1.2, 1.18, 1.02]], dtype=float)

        def energy(p):
            return bond_forces(p, BOX, bonds, np.zeros_like(p))

        forces = np.zeros_like(pos)
        bond_forces(pos, BOX, bonds, forces)
        np.testing.assert_allclose(forces, numeric_forces(pos, energy), atol=1e-4)

    def test_periodic_bond_across_boundary(self):
        pos = np.array([[0.02, 1, 1], [4.95, 1, 1]])  # 0.07 apart via PBC
        forces = np.zeros_like(pos)
        e = bond_forces(pos, BOX, [Bond(0, 1, 0.1, 1000.0)], forces)
        assert e == pytest.approx(0.5 * 1000 * 0.03**2)


class TestAngles:
    def test_equilibrium_zero(self):
        theta0 = np.radians(104.5)
        pos = np.array(
            [
                [1 + 0.1 * np.sin(theta0 / 2), 1 + 0.1 * np.cos(theta0 / 2), 1],
                [1.0, 1.0, 1.0],
                [1 - 0.1 * np.sin(theta0 / 2), 1 + 0.1 * np.cos(theta0 / 2), 1],
            ]
        )
        angles = [Angle(0, 1, 2, theta0, 400.0)]
        forces = np.zeros_like(pos)
        e = angle_forces(pos, BOX, angles, forces)
        assert e == pytest.approx(0.0, abs=1e-10)
        np.testing.assert_allclose(forces, 0.0, atol=1e-6)

    def test_gradient_numeric(self):
        angles = [Angle(0, 1, 2, np.radians(109.47), 383.0)]
        pos = np.array([[1.08, 1.02, 1.0], [1, 1, 1], [0.95, 1.07, 1.03]])

        def energy(p):
            return angle_forces(p, BOX, angles, np.zeros_like(p))

        forces = np.zeros_like(pos)
        angle_forces(pos, BOX, angles, forces)
        np.testing.assert_allclose(forces, numeric_forces(pos, energy), atol=1e-4)

    def test_net_force_and_torque_free(self):
        angles = [Angle(0, 1, 2, np.radians(100.0), 500.0)]
        pos = np.array([[1.1, 1.0, 1.0], [1, 1, 1], [1.0, 1.12, 1.0]])
        forces = np.zeros_like(pos)
        angle_forces(pos, BOX, angles, forces)
        np.testing.assert_allclose(forces.sum(axis=0), 0.0, atol=1e-10)
        torque = np.cross(pos - pos.mean(axis=0), forces).sum(axis=0)
        np.testing.assert_allclose(torque, 0.0, atol=1e-9)


class TestDihedrals:
    def test_gradient_numeric(self):
        dihedrals = [Dihedral(0, 1, 2, 3, np.radians(60.0), 5.0, 3)]
        pos = np.array(
            [[1.0, 1.0, 1.0], [1.15, 1.0, 1.0], [1.2, 1.14, 1.0], [1.3, 1.2, 1.13]]
        )

        def energy(p):
            return dihedral_forces(p, BOX, dihedrals, np.zeros_like(p))

        forces = np.zeros_like(pos)
        dihedral_forces(pos, BOX, dihedrals, forces)
        np.testing.assert_allclose(forces, numeric_forces(pos, energy), atol=1e-4)

    def test_energy_range(self):
        """V = k(1 + cos(n phi - phi0)) lies in [0, 2k]."""
        rng = np.random.default_rng(4)
        dihedrals = [Dihedral(0, 1, 2, 3, 0.3, 7.0, 2)]
        for _ in range(20):
            pos = np.array([1.0, 1.0, 1.0]) + rng.uniform(0, 0.3, (4, 3))
            e = dihedral_forces(pos, BOX, dihedrals, np.zeros((4, 3)))
            assert -1e-9 <= e <= 14.0 + 1e-9

    def test_net_force_zero(self):
        dihedrals = [Dihedral(0, 1, 2, 3, 0.0, 3.0, 1)]
        pos = np.array(
            [[1.0, 1.0, 1.0], [1.15, 1.0, 1.0], [1.2, 1.14, 1.0], [1.3, 1.2, 1.13]]
        )
        forces = np.zeros_like(pos)
        dihedral_forces(pos, BOX, dihedrals, forces)
        np.testing.assert_allclose(forces.sum(axis=0), 0.0, atol=1e-10)


class TestComputeBonded:
    def test_combined_terms(self):
        topo = Topology([LJ_FLUID])
        for m in range(4):
            topo.add_particles(["AR"], [0.0], 0)
        topo.bonds.append(Bond(0, 1, 0.15, 500.0))
        topo.angles.append(Angle(0, 1, 2, np.radians(110), 300.0))
        topo.dihedrals.append(Dihedral(0, 1, 2, 3, 0.0, 2.0, 1))
        pos = np.array(
            [[1.0, 1.0, 1.0], [1.16, 1.0, 1.0], [1.2, 1.15, 1.0], [1.3, 1.2, 1.1]]
        )
        system = ParticleSystem(pos, BOX, topo)
        res = compute_bonded(system)
        assert res.energy == pytest.approx(
            res.energy_bonds + res.energy_angles + res.energy_dihedrals
        )
        assert res.energy_bonds > 0
        np.testing.assert_allclose(res.forces.sum(axis=0), 0.0, atol=1e-9)

    def test_empty_lists_zero(self, lj_small):
        res = compute_bonded(lj_small)
        assert res.energy == 0.0
        np.testing.assert_array_equal(res.forces, 0.0)
