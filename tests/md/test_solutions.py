"""Ionic-solution, embedded-solute, and LJ-mixture builders: charge
neutrality, composition, constraint wiring, and energy sanity."""

import numpy as np
import pytest

from repro.md.constants import CL_ION, LJ_FLUID_B, NA_ION, SOLUTE_LJ
from repro.md.mdloop import MdConfig, MdLoop
from repro.md.minimize import minimize
from repro.md.forces import compute_short_range
from repro.md.nonbonded import NonbondedParams
from repro.md.pairlist import build_pair_list
from repro.md.water import (
    build_embedded_solute,
    build_ionic_solution,
    build_lj_mixture,
)

NB = NonbondedParams(r_cut=0.45, r_list=0.55, coulomb_mode="rf")


def _energy(system):
    plist = build_pair_list(system, NB.r_list)
    return compute_short_range(system, plist, NB).energy


class TestIonicSolution:
    def test_charge_neutrality(self):
        system = build_ionic_solution(300)
        assert float(np.sum(system.charges)) == pytest.approx(0.0,
                                                              abs=1e-12)

    def test_composition(self):
        system = build_ionic_solution(300, ion_frac=0.1)
        names = [system.topology.atom_types[t].name
                 for t in system.topology.type_ids]
        n_na, n_cl = names.count("NA"), names.count("CL")
        assert n_na == n_cl > 0
        assert names.count("OW") == names.count("HW") // 2

    def test_ion_frac_scales_ion_count(self):
        lo = build_ionic_solution(600, ion_frac=0.02)
        hi = build_ionic_solution(600, ion_frac=0.2)

        def ions(system):
            names = [system.topology.atom_types[t].name
                     for t in system.topology.type_ids]
            return names.count("NA")

        assert ions(hi) > ions(lo) > 0

    def test_water_constraints_only(self):
        # Ions are monatomic: every constraint belongs to a water
        # molecule (3 per molecule), none touches an ion site.
        system = build_ionic_solution(300)
        names = [system.topology.atom_types[t].name
                 for t in system.topology.type_ids]
        n_waters = names.count("OW")
        assert len(system.topology.constraints) == 3 * n_waters
        ion_indices = {i for i, name in enumerate(names)
                       if name in ("NA", "CL")}
        for c in system.topology.constraints:
            assert c.i not in ion_indices and c.j not in ion_indices

    def test_deterministic_and_seed_sensitive(self):
        a = build_ionic_solution(300, seed=11)
        b = build_ionic_solution(300, seed=11)
        c = build_ionic_solution(300, seed=12)
        np.testing.assert_array_equal(a.positions, b.positions)
        assert not np.array_equal(a.charges, c.charges) or not (
            np.array_equal(a.positions, c.positions)
        )

    def test_energy_sane_and_relaxes(self):
        system = build_ionic_solution(300)
        e0 = _energy(system)
        assert np.isfinite(e0)
        minimize(system, MdConfig(nonbonded=NB), n_steps=40)
        assert _energy(system) < e0

    def test_md_step_stable(self):
        system = build_ionic_solution(300)
        minimize(system, MdConfig(nonbonded=NB), n_steps=40)
        system.thermalize(300.0, np.random.default_rng(3))
        loop = MdLoop(system, MdConfig(nonbonded=NB))
        result = loop.run(3)
        assert np.isfinite(result.reporter.frames[-1].total)


class TestEmbeddedSolute:
    def test_single_solute_at_center(self):
        system = build_embedded_solute(300)
        names = [system.topology.atom_types[t].name
                 for t in system.topology.type_ids]
        assert names.count("SOL") == 1
        solute_idx = names.index("SOL")
        np.testing.assert_allclose(
            system.positions[solute_idx],
            np.asarray(system.box.lengths) / 2,
        )
        assert system.charges[solute_idx] == 0.0

    def test_solvent_carved_around_solute(self):
        system = build_embedded_solute(300)
        names = [system.topology.atom_types[t].name
                 for t in system.topology.type_ids]
        solute_idx = names.index("SOL")
        solute_pos = system.positions[solute_idx]
        box = np.asarray(system.box.lengths)
        ow = np.asarray([i for i, n in enumerate(names) if n == "OW"])
        delta = system.positions[ow] - solute_pos
        delta -= box * np.round(delta / box)  # minimum image
        min_dist = float(np.min(np.linalg.norm(delta, axis=1)))
        assert min_dist > 0.35  # exclusion shell held
        assert len(ow) > 0

    def test_neutral_and_finite(self):
        system = build_embedded_solute(300)
        assert float(np.sum(system.charges)) == pytest.approx(0.0,
                                                              abs=1e-12)
        assert np.isfinite(_energy(system))

    def test_solute_type_registered(self):
        def sigma(atom_type):
            return (atom_type.c12 / atom_type.c6) ** (1.0 / 6.0)

        assert sigma(SOLUTE_LJ) > sigma(NA_ION)
        assert sigma(SOLUTE_LJ) > sigma(CL_ION)


class TestLjMixture:
    def test_two_species(self):
        system = build_lj_mixture(300)
        names = [system.topology.atom_types[t].name
                 for t in system.topology.type_ids]
        assert set(names) == {"AR", "KR"}
        frac_b = names.count("KR") / len(names)
        assert 0.3 < frac_b < 0.7

    def test_fraction_b_respected(self):
        system = build_lj_mixture(300, fraction_b=0.25)
        names = [system.topology.atom_types[t].name
                 for t in system.topology.type_ids]
        assert names.count("KR") / len(names) == pytest.approx(0.25,
                                                               abs=0.05)

    def test_uncharged_unconstrained(self):
        system = build_lj_mixture(200)
        assert not np.any(system.charges)
        assert len(system.topology.constraints) == 0

    def test_kr_heavier_than_ar(self):
        assert LJ_FLUID_B.mass > 39.9

    def test_energy_finite(self):
        nb = NonbondedParams(r_cut=0.45, r_list=0.55, coulomb_mode="none")
        system = build_lj_mixture(300)
        plist = build_pair_list(system, nb.r_list)
        assert np.isfinite(compute_short_range(system, plist, nb).energy)
