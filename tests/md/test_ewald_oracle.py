"""Direct-sum Ewald oracle and PME cross-validation."""

import numpy as np
import pytest

from repro.md.box import Box
from repro.md.constants import AtomType
from repro.md.ewald import DirectEwaldSolver, EwaldParams
from repro.md.pme import PmeParams, PmeSolver
from repro.md.system import ParticleSystem
from repro.md.topology import Topology

ION = AtomType("ION", 20.0, 0.0, 0.0)


@pytest.fixture(scope="module")
def charged_system():
    rng = np.random.default_rng(7)
    n, edge = 12, 2.4
    q = rng.uniform(-1, 1, n)
    q -= q.mean()
    topo = Topology([ION])
    for m in range(n):
        topo.add_particles(["ION"], [q[m]], mol_id=m)
    return ParticleSystem(rng.uniform(0, edge, (n, 3)), Box.cubic(edge), topo)


class TestDirectEwald:
    def test_params_validation(self):
        with pytest.raises(ValueError):
            EwaldParams(beta=0.0)
        with pytest.raises(ValueError):
            EwaldParams(kmax=0)

    def test_reciprocal_forces_match_numerical_gradient(self, charged_system):
        beta = 3.2
        solver = DirectEwaldSolver(
            charged_system.box, EwaldParams(beta=beta, kmax=10)
        )
        q = charged_system.charges
        e0, f0 = solver.reciprocal(charged_system.positions, q)
        h = 1e-6
        for p in (0, 5):
            for d in range(3):
                s1 = charged_system.positions.copy()
                s2 = charged_system.positions.copy()
                s1[p, d] += h
                s2[p, d] -= h
                e1, _ = solver.reciprocal(s1, q)
                e2, _ = solver.reciprocal(s2, q)
                assert f0[p, d] == pytest.approx(
                    -(e1 - e2) / (2 * h), rel=1e-5, abs=1e-6
                )

    def test_kmax_convergence(self, charged_system):
        solver_lo = DirectEwaldSolver(
            charged_system.box, EwaldParams(beta=3.2, kmax=6)
        )
        solver_hi = DirectEwaldSolver(
            charged_system.box, EwaldParams(beta=3.2, kmax=14)
        )
        q = charged_system.charges
        e_lo, _ = solver_lo.reciprocal(charged_system.positions, q)
        e_hi, _ = solver_hi.reciprocal(charged_system.positions, q)
        assert e_lo == pytest.approx(e_hi, rel=1e-4)

    def test_translational_invariance(self, charged_system):
        """Exact Ewald is exactly invariant under rigid translation —
        unlike interpolated PME."""
        solver = DirectEwaldSolver(
            charged_system.box, EwaldParams(beta=3.2, kmax=10)
        )
        q = charged_system.charges
        e0, _ = solver.reciprocal(charged_system.positions, q)
        shifted = charged_system.positions + np.array([0.137, -0.211, 0.05])
        e1, _ = solver.reciprocal(shifted, q)
        assert e1 == pytest.approx(e0, rel=1e-12)


class TestPmeVsOracle:
    @pytest.mark.parametrize("order,spacing,tol", [(4, 0.1, 1e-3), (6, 0.05, 1e-6)])
    def test_pme_energy_converges_to_oracle(
        self, charged_system, order, spacing, tol
    ):
        beta = 3.2
        oracle = DirectEwaldSolver(
            charged_system.box, EwaldParams(beta=beta, kmax=14)
        )
        pme = PmeSolver(
            charged_system.box,
            PmeParams(order=order, grid_spacing=spacing, beta=beta),
        )
        q = charged_system.charges
        e_exact, f_exact = oracle.reciprocal(charged_system.positions, q)
        e_pme, f_pme = pme.reciprocal(charged_system)
        assert e_pme == pytest.approx(e_exact, rel=tol)
        scale = np.abs(f_exact).max()
        assert np.abs(f_pme - f_exact).max() / scale < 100 * tol

    def test_self_energy_identical(self, charged_system):
        beta = 3.2
        oracle = DirectEwaldSolver(charged_system.box, EwaldParams(beta=beta))
        pme = PmeSolver(charged_system.box, PmeParams(beta=beta))
        assert oracle.self_energy(charged_system.charges) == pytest.approx(
            pme.self_energy(charged_system.charges)
        )

    def test_full_compute_agrees(self, charged_system):
        beta = 3.2
        oracle = DirectEwaldSolver(
            charged_system.box, EwaldParams(beta=beta, kmax=14)
        )
        pme = PmeSolver(
            charged_system.box,
            PmeParams(order=6, grid_spacing=0.05, beta=beta),
        )
        res_o = oracle.compute(charged_system)
        res_p = pme.compute(charged_system)
        assert res_p.energy == pytest.approx(res_o.energy, rel=1e-5)
