"""SHAKE/RATTLE constraints, leapfrog integration, thermostats, the MD
loop and minimiser."""

import numpy as np
import pytest

from repro.md.constraints import ConstraintError, ShakeSolver
from repro.md.integrator import IntegratorConfig, LeapfrogIntegrator
from repro.md.mdloop import MdConfig, MdLoop
from repro.md.minimize import minimize
from repro.md.nonbonded import NonbondedParams
from repro.md.reporter import EnergyReporter
from repro.md.water import build_lj_fluid, build_water_system


class TestShake:
    def test_projects_onto_constraints(self, water_small, rng):
        sys2 = water_small.copy()
        solver = ShakeSolver(sys2.topology.constraints, sys2.masses)
        reference = sys2.positions.copy()
        sys2.positions += rng.normal(scale=0.005, size=sys2.positions.shape)
        solver.apply_positions(sys2.positions, reference, sys2.box)
        assert solver.max_violation(sys2.positions, sys2.box) < 1e-7

    def test_velocity_projection(self, water_small, rng):
        sys2 = water_small.copy()
        solver = ShakeSolver(sys2.topology.constraints, sys2.masses)
        sys2.velocities = rng.normal(scale=1.0, size=sys2.velocities.shape)
        solver.apply_velocities(sys2.velocities, sys2.positions, sys2.box)
        a = solver.arrays
        dr = sys2.box.displacement(sys2.positions[a.i], sys2.positions[a.j])
        dv = sys2.velocities[a.i] - sys2.velocities[a.j]
        assert np.abs(np.sum(dr * dv, axis=1)).max() < 1e-7

    def test_momentum_conserved_by_projection(self, water_small, rng):
        sys2 = water_small.copy()
        solver = ShakeSolver(sys2.topology.constraints, sys2.masses)
        ref = sys2.positions.copy()
        sys2.positions += rng.normal(scale=0.003, size=sys2.positions.shape)
        com_before = (sys2.masses[:, None] * sys2.positions).sum(axis=0)
        solver.apply_positions(sys2.positions, ref, sys2.box)
        com_after = (sys2.masses[:, None] * sys2.positions).sum(axis=0)
        np.testing.assert_allclose(com_before, com_after, atol=1e-8)

    def test_nonconvergence_raises(self, water_small):
        solver = ShakeSolver(
            water_small.topology.constraints,
            water_small.masses,
            max_iterations=1,
        )
        sys2 = water_small.copy()
        ref = sys2.positions.copy()
        sys2.positions += 0.03
        sys2.positions[0] += 0.4  # large violation, 1 iteration cannot fix
        with pytest.raises(ConstraintError):
            solver.apply_positions(sys2.positions, ref, sys2.box)

    def test_no_constraints_noop(self, lj_small):
        solver = ShakeSolver([], lj_small.masses)
        assert solver.apply_positions(
            lj_small.positions.copy(), lj_small.positions, lj_small.box
        ) == 0
        assert solver.max_violation(lj_small.positions, lj_small.box) == 0.0


class TestIntegrator:
    def test_free_particle_linear_motion(self, lj_small):
        sys2 = lj_small.copy()
        sys2.velocities[:] = np.array([0.1, 0.0, 0.0])
        cfg = IntegratorConfig(dt=0.002, remove_com_interval=0)
        integ = LeapfrogIntegrator(cfg)
        x0 = sys2.positions.copy()
        for _ in range(10):
            integ.step(sys2, np.zeros_like(sys2.positions))
        drift = sys2.box.minimum_image(sys2.positions - x0)
        np.testing.assert_allclose(drift[:, 0], 0.1 * 0.002 * 10, atol=1e-12)

    def test_thermostats_regulate(self, lj_small, rng):
        for thermostat in ("berendsen", "vrescale"):
            sys2 = lj_small.copy()
            sys2.thermalize(300.0, rng)
            cfg = IntegratorConfig(
                dt=0.002, thermostat=thermostat, target_temperature=100.0, tau_t=0.05
            )
            integ = LeapfrogIntegrator(cfg)
            for _ in range(200):
                integ.step(sys2, np.zeros_like(sys2.positions))
            assert sys2.temperature() == pytest.approx(100.0, rel=0.35)

    def test_config_validation(self):
        with pytest.raises(ValueError):
            IntegratorConfig(dt=0.0)
        with pytest.raises(ValueError):
            IntegratorConfig(thermostat="nose")
        with pytest.raises(ValueError):
            IntegratorConfig(tau_t=-1.0)


class TestNveConservation:
    def test_lj_fluid_energy_conserved(self):
        system = build_lj_fluid(150, temperature=100.0, seed=5)
        cfg = MdConfig(
            nonbonded=NonbondedParams(r_cut=0.85, r_list=0.95, coulomb_mode="none"),
            integrator=IntegratorConfig(dt=0.002, thermostat="none"),
            report_interval=10,
        )
        minimize(system, cfg, n_steps=60)
        system.thermalize(100.0, np.random.default_rng(6))
        res = MdLoop(system, cfg).run(120)
        e = res.reporter.total_energy()
        ekin0 = res.reporter.frames[0].kinetic
        assert np.abs(e - e.mean()).max() < 0.05 * ekin0

    def test_water_energy_conserved_with_constraints(self):
        system = build_water_system(450, seed=5)
        cfg = MdConfig(
            nonbonded=NonbondedParams(r_cut=0.65, r_list=0.75, coulomb_mode="rf"),
            integrator=IntegratorConfig(dt=0.001, thermostat="none"),
            report_interval=10,
        )
        minimize(system, cfg, n_steps=60)
        system.thermalize(300.0, np.random.default_rng(7))
        loop = MdLoop(system, cfg)
        res = loop.run(100)
        e = res.reporter.total_energy()
        ekin0 = res.reporter.frames[0].kinetic
        assert np.abs(e - e.mean()).max() < 0.05 * ekin0
        assert loop.shake.max_violation(system.positions, system.box) < 1e-6


class TestMdLoop:
    def test_timing_taxonomy(self, water_small):
        cfg = MdConfig(
            nonbonded=NonbondedParams(r_cut=0.8, r_list=0.9, coulomb_mode="rf"),
            integrator=IntegratorConfig(dt=0.001),
            report_interval=5,
        )
        res = MdLoop(water_small.copy(), cfg).run(12)
        for kernel in ("Neighbor search", "Force", "Update", "Constraints"):
            assert kernel in res.timing.seconds
        assert res.timing.fractions()["Force"] > 0.3
        assert res.n_pairlist_rebuilds == 2  # nstlist=10, steps 0 and 10

    def test_trajectory_output(self, water_small):
        cfg = MdConfig(
            nonbonded=NonbondedParams(r_cut=0.8, r_list=0.9, coulomb_mode="rf"),
            output_interval=4,
            report_interval=100,
        )
        res = MdLoop(water_small.copy(), cfg).run(9)
        assert len(res.trajectory_frames) == 3  # steps 0, 4, 8

    def test_pme_config_consistency_enforced(self):
        with pytest.raises(ValueError, match="use_pme requires"):
            MdConfig(use_pme=True, nonbonded=NonbondedParams(coulomb_mode="rf"))

    def test_reporter_interval(self):
        rep = EnergyReporter(interval=50)
        assert rep.maybe_record(0, -1.0, 1.0, 300.0)
        assert not rep.maybe_record(49, -1.0, 1.0, 300.0)
        assert rep.maybe_record(100, -1.0, 1.0, 300.0)
        assert len(rep.frames) == 2

    def test_reporter_drift_fit(self):
        rep = EnergyReporter(interval=1)
        for step in range(10):
            rep.maybe_record(step, 2.0 * step, 0.0, 300.0)
        assert rep.drift_per_step() == pytest.approx(2.0)


class TestMinimize:
    def test_reduces_energy_and_force(self):
        system = build_water_system(450, seed=13)
        cfg = MdConfig(
            nonbonded=NonbondedParams(r_cut=0.65, r_list=0.75, coulomb_mode="rf")
        )
        res = minimize(system, cfg, n_steps=50)
        assert res.final_energy < res.initial_energy
        # Constraints survive minimisation.
        from repro.md.constraints import ShakeSolver

        solver = ShakeSolver(system.topology.constraints, system.masses)
        assert solver.max_violation(system.positions, system.box) < 1e-5

    def test_invalid_steps(self, lj_small, nb_lj):
        with pytest.raises(ValueError):
            minimize(lj_small.copy(), MdConfig(nonbonded=nb_lj), n_steps=0)
