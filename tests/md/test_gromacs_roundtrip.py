"""On-disk round trips for the GROMACS file readers/writers.

`tests/md/test_gromacs_files_pressure.py` covers in-memory buffers; this
file exercises the actual read/write paths a workflow uses — real files,
re-reading what was written, and writing what was read.
"""

import numpy as np
import pytest

from repro.md.gromacs_files import (
    PAPER_TABLE3_MDP,
    mdp_to_configs,
    parse_mdp,
    read_gro,
    system_from_gro,
    write_gro,
    write_mdp,
)


class TestGroDiskRoundTrip:
    def test_write_read_write_is_stable(self, tmp_path, water_small):
        """Second generation of a .gro file equals the first: the format
        round-trips losslessly once values are at file precision."""
        p1, p2 = tmp_path / "a.gro", tmp_path / "b.gro"
        with open(p1, "w") as fh:
            write_gro(water_small, fh, title="gen1")
        with open(p1) as fh:
            gen1 = read_gro(fh)
        with open(p2, "w") as fh:
            write_gro(system_from_gro(gen1), fh, title="gen1")
        with open(p2) as fh:
            gen2 = read_gro(fh)
        assert np.array_equal(gen1.positions, gen2.positions)
        assert np.array_equal(gen1.velocities, gen2.velocities)
        assert gen1.box.lengths == gen2.box.lengths

    def test_velocity_free_file_round_trips(self, tmp_path, water_small):
        path = tmp_path / "novel.gro"
        with open(path, "w") as fh:
            write_gro(water_small, fh, include_velocities=False)
        with open(path) as fh:
            data = read_gro(fh)
        assert data.velocities is None
        rebuilt = system_from_gro(data)
        assert rebuilt.n_particles == water_small.n_particles
        assert np.array_equal(rebuilt.velocities, np.zeros_like(rebuilt.positions))

    def test_atom_metadata_survives(self, tmp_path, water_small):
        path = tmp_path / "meta.gro"
        with open(path, "w") as fh:
            write_gro(water_small, fh)
        with open(path) as fh:
            data = read_gro(fh)
        assert set(data.residue_names) == {"SOL"}
        assert set(data.atom_names) == {"OW", "HW"}
        # O-H-H per molecule, 1-based residue ids.
        assert data.atom_names[:3] == ["OW", "HW", "HW"]
        assert data.residue_ids[0] == 1


class TestMdpDiskRoundTrip:
    def test_paper_settings_round_trip(self, tmp_path):
        path = tmp_path / "grompp.mdp"
        with open(path, "w") as fh:
            write_mdp(PAPER_TABLE3_MDP, fh)
        with open(path) as fh:
            parsed = parse_mdp(fh)
        assert parsed == PAPER_TABLE3_MDP

    def test_round_tripped_file_builds_same_configs(self, tmp_path):
        path = tmp_path / "grompp.mdp"
        with open(path, "w") as fh:
            write_mdp(PAPER_TABLE3_MDP, fh)
        with open(path) as fh:
            nb_rt, integ_rt, steps_rt = mdp_to_configs(parse_mdp(fh))
        nb, integ, steps = mdp_to_configs(PAPER_TABLE3_MDP)
        assert nb_rt == nb
        assert integ_rt == integ
        assert steps_rt == steps

    def test_unknown_keys_survive_round_trip(self, tmp_path):
        params = dict(PAPER_TABLE3_MDP)
        params["title"] = "water box"
        path = tmp_path / "x.mdp"
        with open(path, "w") as fh:
            write_mdp(params, fh)
        with open(path) as fh:
            assert parse_mdp(fh)["title"] == "water box"


class TestCheckpointVsGro:
    def test_gro_cannot_carry_a_restart(self, tmp_path, water_small):
        """Documents why checkpoints are binary: .gro's 3-decimal columns
        truncate state, so a text round trip breaks bit-identity."""
        path = tmp_path / "state.gro"
        with open(path, "w") as fh:
            write_gro(water_small, fh)
        with open(path) as fh:
            back = system_from_gro(read_gro(fh))
        assert not np.array_equal(back.positions, water_small.positions)
        assert back.positions == pytest.approx(
            water_small.box.wrap(water_small.positions), abs=5.1e-4
        )
