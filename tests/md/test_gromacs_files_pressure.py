"""GROMACS file formats, benchmark-case factory, and pressure/virial."""

import io

import numpy as np
import pytest

from repro.md.forces import brute_force_short_range, compute_short_range
from repro.md.gromacs_files import (
    PAPER_TABLE3_MDP,
    benchmark_case,
    mdp_to_configs,
    parse_mdp,
    read_gro,
    system_from_gro,
    write_gro,
    write_mdp,
)
from repro.md.nonbonded import NonbondedParams
from repro.md.pairlist import build_pair_list
from repro.md.pressure import PRESSURE_UNIT_TO_BAR, compute_pressure, ideal_gas_pressure
from repro.md.water import build_lj_fluid


class TestGroRoundTrip:
    def test_positions_velocities_box(self, water_small):
        buf = io.StringIO()
        write_gro(water_small, buf, title="roundtrip test")
        buf.seek(0)
        data = read_gro(buf)
        assert data.title == "roundtrip test"
        np.testing.assert_allclose(
            data.positions,
            water_small.box.wrap(water_small.positions),
            atol=5.1e-4,  # .gro stores 3 decimals
        )
        np.testing.assert_allclose(
            data.velocities, water_small.velocities, atol=5.1e-5
        )
        assert data.box.lengths == pytest.approx(water_small.box.lengths)

    def test_system_reconstruction(self, water_small):
        buf = io.StringIO()
        write_gro(water_small, buf)
        buf.seek(0)
        rebuilt = system_from_gro(read_gro(buf))
        assert rebuilt.n_particles == water_small.n_particles
        assert len(rebuilt.topology.constraints) == len(
            water_small.topology.constraints
        )
        # Physics of the rebuilt system matches to file precision.
        nb = NonbondedParams(r_cut=0.8, r_list=0.9, coulomb_mode="rf")
        e_orig = brute_force_short_range(water_small, nb).energy
        e_rebuilt = brute_force_short_range(rebuilt, nb).energy
        assert e_rebuilt == pytest.approx(e_orig, rel=5e-2)

    def test_no_velocities_variant(self, water_small):
        buf = io.StringIO()
        write_gro(water_small, buf, include_velocities=False)
        buf.seek(0)
        data = read_gro(buf)
        assert data.velocities is None

    def test_truncated_rejected(self):
        with pytest.raises(ValueError):
            read_gro(io.StringIO("title\n10\n"))

    def test_non_water_rejected(self, lj_small):
        buf = io.StringIO()
        write_gro(lj_small, buf)
        buf.seek(0)
        with pytest.raises(ValueError):
            system_from_gro(read_gro(buf))


class TestMdp:
    def test_paper_table3_maps(self):
        nb, integ, algorithm = mdp_to_configs(PAPER_TABLE3_MDP)
        assert nb.r_cut == 1.0
        assert nb.nstlist == 10
        assert nb.coulomb_mode == "ewald"  # PME real-space half
        assert integ.dt == 0.002
        assert integ.thermostat == "vrescale"
        assert algorithm == "settle"

    def test_parse_comments_and_underscores(self):
        text = "rlist = 1.2 ; buffer\n; full comment\nns_type = grid\n"
        params = parse_mdp(io.StringIO(text))
        assert params["rlist"] == "1.2"
        assert params["ns-type"] == "grid"

    def test_roundtrip(self):
        buf = io.StringIO()
        write_mdp(PAPER_TABLE3_MDP, buf)
        buf.seek(0)
        assert parse_mdp(buf) == {
            k.replace("_", "-"): v for k, v in PAPER_TABLE3_MDP.items()
        }

    def test_malformed_rejected(self):
        with pytest.raises(ValueError):
            parse_mdp(io.StringIO("this is not a key value pair\n"))

    def test_inconsistent_cutoffs_rejected(self):
        with pytest.raises(ValueError, match="rcoulomb"):
            mdp_to_configs({"rcoulomb": "1.0", "rvdw": "0.9"})

    def test_unsupported_values_rejected(self):
        with pytest.raises(ValueError):
            mdp_to_configs({"coulombtype": "ewald3dc"})
        with pytest.raises(ValueError):
            mdp_to_configs({"tcoupl": "nose-hoover"})
        with pytest.raises(ValueError):
            mdp_to_configs({"constraint-algorithm": "rattle-only"})


class TestBenchmarkCases:
    def test_folder_name_convention(self):
        system = benchmark_case("0003")
        assert system.n_particles == 3000

    def test_rejects_bad_names(self):
        with pytest.raises(ValueError):
            benchmark_case("water48k")
        with pytest.raises(ValueError):
            benchmark_case("0000")

    def test_deterministic(self):
        a = benchmark_case("0001")
        b = benchmark_case("0001")
        np.testing.assert_array_equal(a.positions, b.positions)


class TestPressure:
    def test_dilute_gas_is_ideal(self):
        gas = build_lj_fluid(200, temperature=300.0, density=0.05, seed=1)
        nb = NonbondedParams(r_cut=1.2, r_list=1.2, coulomb_mode="none")
        sr = brute_force_short_range(gas, nb)
        p = compute_pressure(gas, sr)
        assert p.pressure == pytest.approx(ideal_gas_pressure(gas), rel=1e-2)
        assert p.bar == pytest.approx(p.pressure * PRESSURE_UNIT_TO_BAR)

    def test_stretched_lattice_has_negative_virial(self):
        """A lattice with neighbour spacing beyond the LJ minimum sits in
        the attractive region everywhere: negative virial (inward
        pressure)."""
        # r_min for argon is 0.382 nm; spacing 0.48 nm -> density ~9/nm^3.
        fluid = build_lj_fluid(
            216, temperature=0.0, density=1.0 / 0.48**3, seed=2, jitter=0.0
        )
        fluid.velocities[:] = 0.0
        nb = NonbondedParams(
            r_cut=1.2, r_list=1.2, coulomb_mode="none", shift_lj=False
        )
        sr = brute_force_short_range(fluid, nb)
        p = compute_pressure(fluid, sr)
        assert p.virial_term < 0
        assert p.pressure < 0  # zero kinetic energy: pure inward pull

    def test_virial_consistent_between_engines(self, water_small, nb_water_small):
        plist = build_pair_list(water_small, nb_water_small.r_list)
        a = compute_short_range(water_small, plist, nb_water_small)
        b = brute_force_short_range(water_small, nb_water_small)
        assert a.virial == pytest.approx(b.virial, rel=1e-10)

    def test_virial_full_equals_half_list(self, water_small, nb_water_small):
        plist = build_pair_list(water_small, nb_water_small.r_list)
        half = compute_short_range(water_small, plist, nb_water_small)
        full = compute_short_range(
            water_small, plist.to_full(), nb_water_small
        )
        assert full.virial == pytest.approx(half.virial, rel=1e-10)

    def test_virial_matches_volume_derivative(self):
        """W = -3V dU/dV: scale the box uniformly and differentiate."""
        fluid = build_lj_fluid(100, temperature=100.0, seed=4)
        nb = NonbondedParams(
            r_cut=0.9, r_list=1.0, coulomb_mode="none", shift_lj=False
        )
        sr = brute_force_short_range(fluid, nb)
        eps = 1e-5
        from repro.md.box import Box
        from repro.md.system import ParticleSystem

        energies = []
        for scale in (1.0 + eps, 1.0 - eps):
            scaled = ParticleSystem(
                fluid.positions * scale,
                Box.cubic(fluid.box.lengths[0] * scale),
                fluid.topology,
            )
            energies.append(brute_force_short_range(scaled, nb).energy)
        v = fluid.box.volume
        dudv = (energies[0] - energies[1]) / (
            ((1 + eps) ** 3 - (1 - eps) ** 3) * v
        )
        assert sr.virial == pytest.approx(-3.0 * v * dudv, rel=1e-3)
