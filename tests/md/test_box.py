"""Periodic box: wrapping, minimum image, cutoff validation."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.md.box import Box

coords = st.floats(min_value=-100.0, max_value=100.0, allow_nan=False)


class TestBox:
    def test_cubic(self):
        box = Box.cubic(3.0)
        assert box.lengths == (3.0, 3.0, 3.0)
        assert box.volume == pytest.approx(27.0)
        assert box.min_edge == 3.0

    def test_rejects_bad_lengths(self):
        with pytest.raises(ValueError):
            Box((1.0, -1.0, 1.0))
        with pytest.raises(ValueError):
            Box((1.0, 1.0))

    def test_wrap_into_range(self):
        box = Box.cubic(2.0)
        wrapped = box.wrap(np.array([[2.5, -0.5, 4.0]]))
        np.testing.assert_allclose(wrapped, [[0.5, 1.5, 0.0]])

    def test_minimum_image_halves(self):
        box = Box.cubic(2.0)
        d = box.minimum_image(np.array([1.5, -1.5, 0.4]))
        np.testing.assert_allclose(d, [-0.5, 0.5, 0.4])

    def test_distance_symmetric_across_boundary(self):
        box = Box.cubic(2.0)
        a = np.array([0.1, 0.0, 0.0])
        b = np.array([1.9, 0.0, 0.0])
        assert box.distance(a, b) == pytest.approx(0.2)

    def test_check_cutoff(self):
        box = Box.cubic(2.0)
        box.check_cutoff(0.99)
        with pytest.raises(ValueError):
            box.check_cutoff(1.01)
        with pytest.raises(ValueError):
            box.check_cutoff(-1.0)

    @settings(max_examples=60, deadline=None)
    @given(x=coords, y=coords, z=coords)
    def test_minimum_image_bounds_property(self, x, y, z):
        box = Box((2.0, 3.0, 4.0))
        d = box.minimum_image(np.array([x, y, z]))
        assert np.all(np.abs(d) <= box.array / 2 + 1e-9)

    @settings(max_examples=60, deadline=None)
    @given(x=coords, y=coords, z=coords, sx=st.integers(-3, 3))
    def test_distance_invariant_under_lattice_shift(self, x, y, z, sx):
        box = Box.cubic(2.5)
        a = np.array([x, y, z])
        b = a + np.array([sx * 2.5, 0.0, 0.0])
        assert box.distance(a, np.zeros(3)) == pytest.approx(
            box.distance(b, np.zeros(3)), abs=1e-8
        )

    def test_wrap_is_idempotent(self):
        box = Box.cubic(1.7)
        pts = np.random.default_rng(0).uniform(-10, 10, (50, 3))
        once = box.wrap(pts)
        np.testing.assert_allclose(box.wrap(once), once)
        assert np.all(once >= 0) and np.all(once < 1.7)
