"""Legacy setup shim.

The execution environment has no network and no ``wheel`` package, so PEP
660 editable installs (``pip install -e .``) cannot build an editable
wheel.  ``python setup.py develop`` (or the already-provisioned
``repro-dev.pth`` in site-packages) provides the equivalent offline.
"""

from setuptools import setup

setup()
